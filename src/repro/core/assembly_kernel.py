"""Incremental vectorized TA assembly kernel (Section V-C, numpy-backed).

The reference assembler (``assemble_top_k(..., kernel="reference")`` in
:mod:`repro.core.assembly`) re-sorts every candidate and recomputes every
upper bound each round — O(C·S + C log C) Python per round, quadratic over
a drain — which profiling shows dominating assembly-heavy queries.  This
kernel keeps the identical round structure (one sorted access per stream
per round, the same Theorem 3 decision at the same round) but makes the
per-round bookkeeping incremental:

- **candidate table** — pivot uids are interned into rows of a growable
  table: the candidate's :class:`~repro.core.results.FinalMatch` itself
  (fed through the same ``add_component`` calls, in the same order, as
  the reference assembler performs — so components, replacements and the
  running Eq. 8 lower bound are identical by construction), a ``lower``
  float mirror of the scores and an ``unseen`` C×S 0/1 float matrix
  (1 where the stream has not yet yielded the pivot);
- **bounded heap frontier** — the k best lower bounds live in a lazy
  min-heap of size k.  Lower bounds only rise, so the streaming-top-k
  invariant holds (a row that once fell below the frontier minimum can
  never silently re-enter without an update) and the frontier minimum is
  exactly Theorem 3's ``L_k`` — no per-round sort;
- **vectorized Theorem 3** — when the fast paths cannot decide, every
  candidate's upper bound is evaluated in one step,
  ``U = lower + unseen @ ψ_cur`` (Eq. 10-11), an argpartition-style
  split selects the exact top-k rows (value partition plus first-seen
  tie order, replicating the reference's stable sort) and one max over
  the rest yields ``U_max``;
- **monotone fast paths** — ψ_cur only falls and lower bounds only rise,
  so two exact shortcuts bracket the full evaluation: (a) while
  ``Σψ > L_k`` the unseen-candidate bound alone defeats termination and
  the matvec is skipped; (b) after a full evaluation caches
  ``U_cap = max(max U, Σψ)``, any later round with ``L_k ≥ U_cap``
  terminates immediately — every existing candidate's U is bounded by
  its past value and every later-born candidate by the unseen bound
  folded into ``U_cap``.  (The cache is dropped whenever the monotone
  premises break, which the ≤1e-9 stream sortedness tolerance permits:
  a ψ rising round-over-round, or a component replacement raising a
  candidate's lower — and hence upper — bound.)  Both paths decide
  exactly as the full evaluation would, so the kernel's termination
  round — and therefore its access counts and result set — is identical
  to the reference's.

One honest float caveat: the matvec associates its sum differently than
the reference's left-to-right Python loop, so on arbitrary real-valued
pss an upper bound can differ from the reference's by a few ulps — a
termination flip then requires ``L_k`` and ``U_max`` to collide within
those ulps *without* being exactly equal, which for cosine-derived pss
is a measure-zero coincidence (exact ties, the common case, agree under
every association).  The conformance suites therefore fuzz with
grid-valued pss (every sum exact in float64, so equality assertions are
sharp) *and* pin the engine call sites on real cosine workloads.

Conformance is enforced by the randomized cross-kernel suite in
``tests/test_assembly_kernel.py`` and by the ``scripts/bench_smoke.py``
CI gate; ``benchmarks/bench_ta_assembly.py`` measures the speedup.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.results import FinalMatch, PathMatch
from repro.errors import SearchError

_INITIAL_ROWS = 64


class _Frontier:
    """Bounded lazy min-heap over the k best candidate lower bounds.

    Scores only rise, so once the frontier is full a row outside it can
    only enter by exceeding the current minimum — stale heap entries are
    skipped lazily.  :meth:`kth` is Theorem 3's ``L_k``.
    """

    __slots__ = ("k", "_heap", "_members", "_best")

    def __init__(self, k: int):
        self.k = k
        self._heap: List[tuple] = []
        self._members: Set[int] = set()
        self._best: Dict[int, float] = {}

    def update(self, row: int, score: float) -> None:
        previous = self._best.get(row)
        self._best[row] = score
        if row in self._members:
            if previous != score:
                heapq.heappush(self._heap, (score, row))
            return
        if len(self._members) < self.k:
            self._members.add(row)
            heapq.heappush(self._heap, (score, row))
            return
        if score > self.kth():
            evicted = self._pop_live_min()
            self._members.discard(evicted)
            self._members.add(row)
            heapq.heappush(self._heap, (score, row))

    def kth(self) -> float:
        """The k-th largest lower bound (call only once k rows exist)."""
        while True:
            score, row = self._heap[0]
            if row in self._members and score == self._best[row]:
                return score
            heapq.heappop(self._heap)

    def _pop_live_min(self) -> int:
        while True:
            score, row = heapq.heappop(self._heap)
            if row in self._members and score == self._best[row]:
                return row


class _CandidateTable:
    """Growable interned-pivot arrays: lower bounds + seen bookkeeping.

    Each row *is* the reference assembler's per-candidate
    :class:`FinalMatch`, fed through the very same ``add_component``
    calls in the very same order — so component insertion order,
    replacement behaviour and the running score are identical by
    construction, and the returned objects need no post-hoc rebuild.
    The table merely mirrors the scores into ``lower`` (for the
    vectorized Theorem 3 evaluation) and flips ``unseen`` (the 0/1
    matvec mask) as streams report pivots.
    """

    __slots__ = ("num_streams", "row_of", "uids", "lower", "finals",
                 "unseen", "count", "replacement_raised")

    def __init__(self, num_streams: int):
        self.num_streams = num_streams
        self.row_of: Dict[int, int] = {}
        self.uids: List[int] = []
        # Python floats for the per-access scalar updates (cheap), a numpy
        # view is materialised only at full Theorem 3 evaluations.
        self.lower: List[float] = []
        self.finals: List[FinalMatch] = []
        self.unseen = np.ones((_INITIAL_ROWS, num_streams))
        self.count = 0
        self.replacement_raised = False

    def _grow(self) -> None:
        capacity = self.unseen.shape[0] * 2
        unseen = np.ones((capacity, self.num_streams))
        unseen[: self.count] = self.unseen[: self.count]
        self.unseen = unseen

    def intern(self, uid: int) -> int:
        row = self.row_of.get(uid)
        if row is None:
            if self.count == self.unseen.shape[0]:
                self._grow()
            row = self.count
            self.count += 1
            self.row_of[uid] = row
            self.uids.append(uid)
            self.lower.append(0.0)
            self.finals.append(
                FinalMatch(pivot_uid=uid, expected_components=self.num_streams)
            )
        return row

    def observe(self, row: int, stream_index: int, match: PathMatch) -> Optional[float]:
        """Fold one sorted access into the candidate's bounds.

        Returns the row's lower bound when this access was its first
        sighting or changed its score (the frontier must learn both),
        else ``None``.
        """
        final = self.finals[row]
        first_sighting = stream_index not in final.components
        if first_sighting:
            self.unseen[row, stream_index] = 0.0
        final.add_component(match)
        if first_sighting or final.score != self.lower[row]:
            if not first_sighting:
                # A replacement (possible via the ≤1e-9 sortedness
                # tolerance) raised this candidate's upper bound too —
                # a cached U_cap no longer dominates it.
                self.replacement_raised = True
            self.lower[row] = final.score
            return final.score
        return None


def assemble_top_k_vectorized(
    streams: Sequence["MatchStream"],  # noqa: F821 - structural, avoids cycle
    k: int,
    *,
    exhaustive: bool = False,
    max_rounds: Optional[int] = None,
) -> "AssemblyResult":  # noqa: F821
    """Drop-in replacement for the reference ``assemble_top_k`` loop.

    See the module docstring for the data layout; see
    ``repro.core.assembly.assemble_top_k`` for parameter semantics (this
    function is normally reached through its ``kernel="vectorized"``
    default).
    """
    from repro.core.assembly import AssemblyResult

    if k < 1:
        raise SearchError("k must be at least 1")
    if not streams:
        raise SearchError("assembly needs at least one stream")

    num_streams = len(streams)
    table = _CandidateTable(num_streams)
    frontier = _Frontier(k)
    psi = [1.0] * num_streams  # ψ_cur per stream (1.0 before any access)
    u_cap: Optional[float] = None
    rounds = 0
    terminated_early = False
    truncated = False

    def termination_reached() -> bool:
        nonlocal u_cap
        if table.count < k:
            return False
        lower_k = frontier.kth()
        # Reference operand order (left-to-right Python sum over streams)
        # so the unseen-candidate bound is the identical float.
        unseen_total = sum(psi)
        if unseen_total > lower_k:
            return False  # the virtual candidate alone defeats Theorem 3
        if u_cap is not None and lower_k >= u_cap:
            return True  # every U only fell since the cached evaluation
        count = table.count
        lower = np.asarray(table.lower)
        U = lower + table.unseen[:count] @ np.asarray(psi)
        if count > k:
            # Exact top-k rows: strictly-greater rows are in; boundary
            # ties fill up in row (= first-seen) order, replicating the
            # reference's stable sort.
            in_top = lower > lower_k
            need = k - int(np.count_nonzero(in_top))
            if need > 0:
                in_top = in_top.copy()
                in_top[np.flatnonzero(lower == lower_k)[:need]] = True
            rest_upper = float(U[~in_top].max())
        else:
            rest_upper = 0.0
        u_cap = max(float(U.max()), unseen_total)
        return lower_k >= max(rest_upper, unseen_total)

    while True:
        progressed = False
        for index, stream in enumerate(streams):
            match = stream.next()
            if match is None:
                continue
            progressed = True
            row = table.intern(match.pivot_uid)
            changed = table.observe(row, index, match)
            if changed is not None and not exhaustive:
                frontier.update(row, changed)
        rounds += 1
        if not progressed:
            break  # every stream exhausted
        if not exhaustive:
            if table.replacement_raised:
                u_cap = None  # a lower bound (and its U) rose past the cap
                table.replacement_raised = False
            for index, stream in enumerate(streams):
                current = stream.current_pss
                if current > psi[index]:
                    u_cap = None  # sortedness tolerance let ψ rise
                psi[index] = current
            if termination_reached():
                terminated_early = True
                break
        if max_rounds is not None and rounds >= max_rounds:
            truncated = True
            break

    matches = [table.finals[row] for row in _ranked_rows(table, k)]
    total_accesses = sum(stream.accesses for stream in streams)
    return AssemblyResult(
        matches=matches,
        accesses=total_accesses,
        terminated_early=terminated_early,
        rounds=rounds,
        truncated=truncated,
    )


def _ranked_rows(table: _CandidateTable, k: int) -> List[int]:
    """Rows of the top-k candidates, ordered by (-score, pivot uid).

    Selection uses a value partition plus explicit boundary-tie handling
    (ties admitted in ascending pivot-uid order), which reproduces the
    reference's full ``sorted(..., key=(-score, pivot_uid))`` ranking
    while only ever sorting k rows.
    """
    count = table.count
    if count == 0:
        return []
    lower = np.asarray(table.lower)
    uids = table.uids
    if count > k:
        kth = np.partition(lower, count - k)[count - k]
        rows = [int(r) for r in np.flatnonzero(lower > kth)]
        need = k - len(rows)
        if need > 0:
            tied = sorted(
                (int(r) for r in np.flatnonzero(lower == kth)),
                key=lambda r: uids[r],
            )
            rows.extend(tied[:need])
    else:
        rows = list(range(count))
    rows.sort(key=lambda r: (-lower[r], uids[r]))
    return rows
