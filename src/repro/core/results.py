"""Result value types: sub-query matches, final matches, query results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.kg.paths import Path


@dataclass(frozen=True)
class PathMatch:
    """A match of one sub-query graph (Definition 7).

    ``path`` runs from a φ-match of the sub-query's specific start node to
    ``pivot_uid`` (a φ-match of the pivot); ``pss`` is its exact path
    semantic similarity (Eq. 6).
    """

    subquery_index: int
    path: Path
    pivot_uid: int
    pss: float

    def describe(self, kg: KnowledgeGraph) -> str:
        return f"[g{self.subquery_index}] {self.path.describe(kg)} (pss={self.pss:.3f})"


@dataclass
class FinalMatch:
    """A final match ``fm(u^p)`` assembled at a pivot entity (Eq. 2).

    ``components`` maps sub-query index → its :class:`PathMatch` (missing
    indexes were never matched before TA terminated); ``score`` is the
    match score ``S_m`` — the sum of component pss values, i.e. the lower
    bound at termination, exact once every sub-query contributed.  The
    score is maintained incrementally by :meth:`add_component` (add the
    new pss, subtract a replaced one) rather than re-summed on every add;
    for pure additions the running value is bit-identical to summing the
    components in insertion order.
    """

    pivot_uid: int
    components: Dict[int, PathMatch] = field(default_factory=dict)
    score: float = 0.0

    @property
    def is_complete(self) -> bool:
        """True when every sub-query contributed a component.

        The component dict alone cannot know the sub-query count, so the
        assembler sets this via ``expected_components``.
        """
        return self.expected_components is not None and len(self.components) == self.expected_components

    expected_components: Optional[int] = None

    def add_component(self, match: PathMatch) -> None:
        existing = self.components.get(match.subquery_index)
        if existing is None:
            self.components[match.subquery_index] = match
            self.score += match.pss
        elif match.pss > existing.pss:
            self.components[match.subquery_index] = match
            self.score += match.pss - existing.pss

    def describe(self, kg: KnowledgeGraph) -> str:
        entity = kg.entity(self.pivot_uid)
        parts = "; ".join(
            m.describe(kg) for _i, m in sorted(self.components.items())
        )
        return f"{entity.name}<{entity.etype}> score={self.score:.3f} via {parts}"


@dataclass
class SearchStats:
    """Instrumentation of one A* sub-query search.

    ``stale_pops`` counts EXPAND-policy heap entries that popped after a
    better path to the same fine-grained state superseded them (the lazy
    decrease-key leaves the old entry in the queue).  They cost a pop
    each without becoming expansions, so queue-health reporting needs
    them separately; under the GENERATE policy the counter stays 0.
    """

    expansions: int = 0
    states_generated: int = 0
    pruned_by_tau: int = 0
    pruned_by_visited: int = 0
    pruned_by_bound: int = 0
    stale_pops: int = 0
    goals_emitted: int = 0
    max_queue_size: int = 0
    edges_weighted: int = 0
    nodes_touched: int = 0
    elapsed_seconds: float = 0.0

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Aggregate stats across sub-queries (for reporting)."""
        return SearchStats(
            expansions=self.expansions + other.expansions,
            states_generated=self.states_generated + other.states_generated,
            pruned_by_tau=self.pruned_by_tau + other.pruned_by_tau,
            pruned_by_visited=self.pruned_by_visited + other.pruned_by_visited,
            pruned_by_bound=self.pruned_by_bound + other.pruned_by_bound,
            stale_pops=self.stale_pops + other.stale_pops,
            goals_emitted=self.goals_emitted + other.goals_emitted,
            max_queue_size=max(self.max_queue_size, other.max_queue_size),
            edges_weighted=self.edges_weighted + other.edges_weighted,
            nodes_touched=self.nodes_touched + other.nodes_touched,
            elapsed_seconds=max(self.elapsed_seconds, other.elapsed_seconds),
        )


@dataclass
class QueryResult:
    """Everything a query run returns.

    ``matches`` are the top-k final matches, best first.  ``approximate``
    is True for TBQ runs (the match set may differ from the global
    optimum); ``elapsed_seconds`` is the measured system response time.

    TA bookkeeping: ``ta_accesses`` counts sorted accesses, ``ta_rounds``
    the assembly rounds, and ``ta_truncated`` is True when a
    ``max_rounds`` cap cut the TA short (distinct from a clean drain or
    Theorem 3 early termination).  ``assembly_seconds`` is the time spent
    inside the TA itself — sorted-access pull time (which for SGQ *is*
    the A* search) is excluded, so ``search_seconds`` +
    ``assembly_seconds`` ≈ ``elapsed_seconds``.
    """

    matches: List[FinalMatch]
    elapsed_seconds: float
    approximate: bool = False
    subquery_stats: List[SearchStats] = field(default_factory=list)
    ta_accesses: int = 0
    ta_rounds: int = 0
    ta_truncated: bool = False
    assembly_seconds: float = 0.0
    time_bound: Optional[float] = None

    @property
    def search_seconds(self) -> float:
        """Time outside the TA (decomposition + view + A* search)."""
        return max(self.elapsed_seconds - self.assembly_seconds, 0.0)

    # Search-side counters, aggregated across sub-queries — the queue
    # health of the A* half of the query, surfaced next to the TA
    # bookkeeping so workload reports can split a slow query into
    # search-bound vs assembly-bound without digging into per-sub-query
    # stats.
    @property
    def expansions(self) -> int:
        """A* pop-and-expand iterations across all sub-query searches."""
        return sum(stats.expansions for stats in self.subquery_stats)

    @property
    def pruned_by_tau(self) -> int:
        """Arrivals dropped by the τ estimate bound (Lemma 3)."""
        return sum(stats.pruned_by_tau for stats in self.subquery_stats)

    @property
    def pruned_by_visited(self) -> int:
        """Arrivals dropped by the visited policy (either flavour)."""
        return sum(stats.pruned_by_visited for stats in self.subquery_stats)

    @property
    def stale_pops(self) -> int:
        """EXPAND-policy pops discarded as superseded heap entries."""
        return sum(stats.stale_pops for stats in self.subquery_stats)

    @property
    def max_queue_size(self) -> int:
        """Peak A* frontier size over all sub-query searches."""
        return max(
            (stats.max_queue_size for stats in self.subquery_stats), default=0
        )

    def answer_uids(self) -> List[int]:
        """The answer entities (pivot matches), best first."""
        return [match.pivot_uid for match in self.matches]

    def answer_names(self, kg: KnowledgeGraph) -> List[str]:
        return [kg.entity(uid).name for uid in self.answer_uids()]

    def total_stats(self) -> SearchStats:
        total = SearchStats()
        for stats in self.subquery_stats:
            total = total.merge(stats)
        return total


@dataclass(frozen=True)
class QueryResultPayload:
    """A detached, picklable snapshot of one :class:`QueryResult`.

    The request/response boundary of the multiprocess serving backend:
    a worker process cannot hand back anything referencing its live
    engine (views, caches, searches), so it flattens the result into
    this payload — the final matches (``FinalMatch``/``PathMatch``/
    ``Path`` are pure value objects sharing nothing with the engine),
    the per-sub-query :class:`SearchStats`, the TA bookkeeping, and
    every derived counter *materialised* as a plain field so consumers
    on the other side of the pickle need no recomputation contract.

    :meth:`from_result` / :meth:`to_result` are inverses for everything
    a conformance check compares: matches, scores, components, stats
    and counters round-trip bit-identically.
    """

    matches: Tuple[FinalMatch, ...]
    elapsed_seconds: float
    approximate: bool
    subquery_stats: Tuple[SearchStats, ...]
    ta_accesses: int
    ta_rounds: int
    ta_truncated: bool
    assembly_seconds: float
    time_bound: Optional[float]
    # Derived counters, frozen at capture time (QueryResult recomputes
    # them from subquery_stats; the payload states them outright).
    search_seconds: float
    expansions: int
    pruned_by_tau: int
    pruned_by_visited: int
    stale_pops: int
    max_queue_size: int

    @classmethod
    def from_result(cls, result: QueryResult) -> "QueryResultPayload":
        return cls(
            matches=tuple(result.matches),
            elapsed_seconds=result.elapsed_seconds,
            approximate=result.approximate,
            subquery_stats=tuple(result.subquery_stats),
            ta_accesses=result.ta_accesses,
            ta_rounds=result.ta_rounds,
            ta_truncated=result.ta_truncated,
            assembly_seconds=result.assembly_seconds,
            time_bound=result.time_bound,
            search_seconds=result.search_seconds,
            expansions=result.expansions,
            pruned_by_tau=result.pruned_by_tau,
            pruned_by_visited=result.pruned_by_visited,
            stale_pops=result.stale_pops,
            max_queue_size=result.max_queue_size,
        )

    def to_result(self) -> QueryResult:
        """Reinflate a :class:`QueryResult` (the serving layer's unit).

        The derived counters of the returned result are recomputed from
        ``subquery_stats`` — they agree with the frozen fields because
        both came from the same stats.
        """
        return QueryResult(
            matches=list(self.matches),
            elapsed_seconds=self.elapsed_seconds,
            approximate=self.approximate,
            subquery_stats=list(self.subquery_stats),
            ta_accesses=self.ta_accesses,
            ta_rounds=self.ta_rounds,
            ta_truncated=self.ta_truncated,
            assembly_seconds=self.assembly_seconds,
            time_bound=self.time_bound,
        )

    def answer_uids(self) -> List[int]:
        """The answer entities (pivot matches), best first."""
        return [match.pivot_uid for match in self.matches]
