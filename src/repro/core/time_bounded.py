"""Time-bounded A* semantic search — TBQ (Algorithms 2-3, Section VI).

Three modifications to Algorithm 1, exactly as the paper lists them:

1. matches are harvested into the non-optimal set M̂_i the moment they are
   *generated* during expansion (not when they pop) — implemented by
   passing a harvest list into :meth:`SubQuerySearch.step`;
2. the termination condition becomes an execution-time check;
3. a synchronised estimator decides when to stop searching and launch the
   TA assembly so the whole query finishes inside the bound ``T``:

       T̂ = max{T_A*} + Σ|M̂_i|·t ,  stop when T̂ ≥ T·r%      (Algorithm 3)

**Threading substitution (documented in DESIGN.md).**  The paper runs one
thread per sub-query; under CPython's GIL real threads buy no parallelism,
so the coordinator interleaves the searches round-robin on one thread.
``max{T_A*}`` — the wall time of the slowest parallel thread — is then the
elapsed time of the interleaved loop itself, which is also exactly the
quantity that must stay under the bound for the user-visible SRT, so the
estimator uses it directly.  A deterministic :class:`~repro.utils.timing.
BudgetClock` can replace the wall clock in tests (one tick per expansion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.astar import SubQuerySearch
from repro.core.config import SearchConfig
from repro.core.results import PathMatch
from repro.errors import TimeBudgetError
from repro.utils.timing import Clock, Stopwatch, WallClock


@dataclass
class TimeBoundedOutcome:
    """What the coordinator produced for one TBQ run."""

    harvests: List[List[PathMatch]]
    elapsed_search_seconds: float
    estimated_assembly_seconds: float
    stopped_by_time: bool
    time_checks: int = 0

    @property
    def total_harvested(self) -> int:
        return sum(len(h) for h in self.harvests)


class TimeBoundedCoordinator:
    """Round-robin driver of several time-bounded sub-query searches.

    ``searches`` may mix search kernels: anything with the
    :class:`SubQuerySearch` pull surface (``step(harvest=)`` /
    ``exhausted``) qualifies, so the array-backed
    :class:`~repro.core.search_kernel.VectorizedSubQuerySearch` harvests
    through the same path as the reference search.
    """

    def __init__(
        self,
        searches: Sequence[SubQuerySearch],
        time_bound: float,
        config: SearchConfig,
        clock: Optional[Clock] = None,
        check_interval: int = 8,
    ):
        if time_bound <= 0:
            raise TimeBudgetError("time bound T must be positive")
        if check_interval < 1:
            raise TimeBudgetError("check_interval must be at least 1")
        if not searches:
            raise TimeBudgetError("coordinator needs at least one search")
        self.searches = list(searches)
        self.time_bound = time_bound
        self.config = config
        self.clock = clock if clock is not None else WallClock()
        self.check_interval = check_interval

    def _estimate_total(self, elapsed: float, harvested: int) -> float:
        """Algorithm 3's T̂ = max{T_A*} + Σ|M̂_i|·t."""
        return elapsed + harvested * self.config.assembly_seconds_per_match

    def run(self) -> TimeBoundedOutcome:
        """Search until the time estimate fires or every search exhausts."""
        harvest_maps: List[dict] = [{} for _ in self.searches]
        watch = Stopwatch(self.clock)
        steps_since_check = 0
        time_checks = 0
        stopped_by_time = False
        alert = self.time_bound * self.config.alert_ratio

        active = True
        while active:
            active = False
            for search, harvest in zip(self.searches, harvest_maps):
                if search.exhausted:
                    continue
                search.step(harvest=harvest)
                if not search.exhausted:
                    active = True
                steps_since_check += 1
                if steps_since_check >= self.check_interval:
                    steps_since_check = 0
                    time_checks += 1
                    harvested = sum(len(h) for h in harvest_maps)
                    if self._estimate_total(watch.elapsed(), harvested) >= alert:
                        stopped_by_time = True
                        active = False
                        break

        elapsed = watch.elapsed()
        harvests: List[List[PathMatch]] = [list(h.values()) for h in harvest_maps]
        harvested = sum(len(h) for h in harvests)
        return TimeBoundedOutcome(
            harvests=harvests,
            elapsed_search_seconds=elapsed,
            estimated_assembly_seconds=harvested
            * self.config.assembly_seconds_per_match,
            stopped_by_time=stopped_by_time,
            time_checks=time_checks,
        )


def calibrate_assembly_seconds_per_match(
    sample_matches: int = 2000, kernel: str = "vectorized"
) -> float:
    """Measure the empirical per-match TA cost ``t`` of Algorithm 3.

    Runs a simulated assembly over synthetic single-stream matches (the
    paper: "we get this empirical time via the simulated TA based
    assembly") and returns seconds per match.  ``kernel`` selects the
    assembly implementation to calibrate; the default matches the
    engine's default (the vectorized kernel), so TBQ's time-budget
    estimate reflects the assembler that will actually run.
    """
    from repro.core.assembly import MatchStream, assemble_top_k
    from repro.kg.paths import Path

    if sample_matches < 10:
        raise TimeBudgetError("need at least 10 samples to calibrate")
    matches = [
        PathMatch(
            subquery_index=0,
            path=Path.single_node(i),
            pivot_uid=i,
            pss=1.0 - i / (sample_matches + 1),
        )
        for i in range(sample_matches)
    ]
    watch = Stopwatch()
    assemble_top_k(
        [MatchStream.from_list(matches)],
        k=sample_matches,
        exhaustive=True,
        kernel=kernel,
    )
    return max(watch.elapsed() / sample_matches, 1e-9)
