"""Core SGQ/TBQ machinery: semantic graph, pss, A*, TA assembly, engine."""

from repro.core.compact_view import (
    CompactSemanticGraphView,
    CompactViewFactory,
    lazy_view_factory,
)
from repro.core.config import PssMode, SearchConfig, VisitedPolicy
from repro.core.engine import SemanticGraphQueryEngine
from repro.core.results import FinalMatch, PathMatch, QueryResult, SearchStats
from repro.core.semantic_graph import SemanticGraphView

__all__ = [
    "PssMode",
    "SearchConfig",
    "VisitedPolicy",
    "SemanticGraphQueryEngine",
    "SemanticGraphView",
    "CompactSemanticGraphView",
    "CompactViewFactory",
    "lazy_view_factory",
    "FinalMatch",
    "PathMatch",
    "QueryResult",
    "SearchStats",
]
