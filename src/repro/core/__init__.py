"""Core SGQ/TBQ machinery: semantic graph, pss, A*, TA assembly, engine."""

from repro.core.config import PssMode, SearchConfig, VisitedPolicy
from repro.core.engine import SemanticGraphQueryEngine
from repro.core.results import FinalMatch, PathMatch, QueryResult, SearchStats

__all__ = [
    "PssMode",
    "SearchConfig",
    "VisitedPolicy",
    "SemanticGraphQueryEngine",
    "FinalMatch",
    "PathMatch",
    "QueryResult",
    "SearchStats",
]
