"""Array-backed A* search kernel: batched frontier expansion over the CSR.

:class:`~repro.core.astar.SubQuerySearch` is the Algorithm 1
transcription — one linked ``_State`` object per arrival, a parent-chain
walk per neighbour for the simple-path check, a ``NodeMatcher.is_match``
probe per boundary arrival and a scalar Eq. 7 estimate assembled from
per-predicate view probes for every generated state.  With weight
materialisation (PR 2) and TA assembly (PR 3) vectorized, that
pop-and-expand loop is where D12-class queries spend ~90% of their time.

:class:`VectorizedSubQuerySearch` re-implements the search over the
compact CSR kernel (:class:`~repro.kg.compact.CompactGraph`, via
:class:`~repro.core.compact_view.CompactSemanticGraphView`):

- the **state pool is struct-of-arrays**: append-only scalar columns for
  uid, segment, hop counters, the Eq. 6 accumulators (log product /
  weight sum), priority, parent index and arrival slot (the slot id
  resolves to the edge id and travel direction) — no per-state Python
  objects, the priority queue holds bare pool indexes, and
  :meth:`pool_arrays` exports the columns as flat numpy arrays for
  vector consumers (the ROADMAP's shard/multiprocess items);
- **per-segment tables** are materialised once with whole-array numpy
  ops — one fancy-index scatters the query predicate's weight row and
  its exact logs onto CSR slots, alongside node-indexed columns for the
  boundary's φ-match bitmask (:meth:`CompactGraph.uid_mask` over
  ``NodeMatcher.matches``) and the segment-max ``m(u)`` bounds — so the
  per-arrival cost of a weight probe, an ``is_match`` call and a
  per-predicate ``m(u)`` scan drops to a handful of list reads;
- expansion is **adaptive**: small CSR rows (the common case) run a
  lean scalar loop over the precomputed tables, hub rows gather the
  τ-positive slots with one vectorized mask first; both paths feed the
  same per-slot body in the same slot order, so the decisions cannot
  diverge;
- the **simple-path check walks no chains**: each pool row carries its
  hop-bounded ancestor tuple (≤ N̂ + 1 uids), and membership is one C
  containment test per arrival.

**Decision identity.**  The kernel makes the same decision as the
reference search at every step under both visited policies: same seeds
in the same order, same arrival order (advance before continue, CSR slot
order), the same τ / visited / bound prunes, the same heap tie-breaking
(monotone insertion counter), and bit-identical priorities — which is
why every transcendental stays on ``math.exp`` / ``math.log``: numpy's
SIMD ``np.exp`` / ``np.log`` loops may differ from libm by an ulp, and
one flipped bit in a priority reorders the heap.  Exact logs are
amortised over *distinct* weights (a weight or ``m(u)`` row draws from
at most one value per graph predicate), so the scalar log cost stays
out of the hot loop.  ``tests/test_search_kernel.py`` pins matches,
pss, emission order and every search counter against the reference
across randomized graphs, policies and τ sweeps;
``repro.bench.searchbench`` re-proves it in CI.

The public surface mirrors :class:`SubQuerySearch` exactly —
``next_match`` / ``run`` / ``step(harvest=)`` / ``exhausted`` /
``stats`` — so TA assembly's sorted access and TBQ's
:class:`~repro.core.time_bounded.TimeBoundedCoordinator` drive either
kernel unchanged.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.config import PssMode, SearchConfig, VisitedPolicy
from repro.core.pss import LOG_ZERO, estimate_pss, log_weight
from repro.core.results import PathMatch, SearchStats
from repro.errors import SearchError
from repro.kg.paths import Path, PathStep
from repro.query.model import SubQueryGraph
from repro.query.transform import NodeMatcher
from repro.utils.heap import MaxHeap
from repro.utils.timing import Clock, Stopwatch, WallClock

#: Log-product collapse threshold, matching ``estimate_pss`` /
#: ``exact_pss_from_log`` (anything at or below reads as weight 0).
_LOG_PRUNE = LOG_ZERO / 2

#: CSR rows at least this long take the vectorized τ-gather before the
#: scalar admit loop; shorter rows skip straight to it (numpy call
#: overhead beats the mask win on a handful of slots).  Purely a cost
#: knob: both paths run the identical per-slot body in slot order.
_GATHER_MIN_DEGREE = 48


def supports_vectorized_search(view) -> bool:
    """Whether ``view`` exposes the compact surface this kernel needs.

    Duck-typed on the three capabilities the kernel consumes — the
    frozen CSR graph plus whole-graph weight and ``m(u)`` rows — so any
    future view over a :class:`~repro.kg.compact.CompactGraph` (a shard
    proxy, say) qualifies without inheriting from
    :class:`~repro.core.compact_view.CompactSemanticGraphView`.
    """
    return (
        getattr(view, "graph", None) is not None
        and hasattr(view, "weight_row_array")
        and hasattr(view, "bounds_row_array")
    )


def _exact_log_array(values: np.ndarray) -> np.ndarray:
    """``log_weight`` over an array, bit-identical to the scalar path.

    ``np.log`` is not guaranteed bit-identical to ``math.log`` (numpy
    ships its own SIMD loops, allowed to differ by an ulp), and heap
    order hangs on exact priority bits — so logs go through
    :func:`~repro.core.pss.log_weight`, amortised over the *distinct*
    values: a weight or ``m(u)`` row draws from at most one value per
    graph predicate, so the scalar loop runs tens of times, not
    per-node.
    """
    distinct, inverse = np.unique(values, return_inverse=True)
    logs = np.fromiter(
        (log_weight(value) for value in distinct.tolist()),
        dtype=np.float64,
        count=distinct.size,
    )
    return logs[inverse]


class _SegmentTable:
    """Per-segment expansion tables (one fancy-index, reused forever).

    ``pos`` / ``pos_l`` / ``pos_count`` / ``w_l`` / ``lw_l`` are
    slot-indexed (per arriving edge); ``phi_l`` / ``m_*`` / ``logm_*``
    are node-indexed (per arrival endpoint) — same per-arrival read
    count, num_nodes-sized mirrors.  ``pos`` stays an array for the
    hub-row τ-gather; everything the scalar admit loop reads is a
    plain-list mirror.  ``m_adv_l`` / ``logm_adv_l`` are ``None`` on the
    last segment, where an advance is a goal and gets an exact pss
    instead of an estimate.
    """

    __slots__ = (
        "pos",
        "pos_l",
        "pos_count",
        "w_l",
        "lw_l",
        "phi_l",
        "m_cont_l",
        "logm_cont_l",
        "m_adv_l",
        "logm_adv_l",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])


class VectorizedSubQuerySearch:
    """Array-backed A* semantic search for one sub-query (Algorithm 1).

    Drop-in sibling of :class:`~repro.core.astar.SubQuerySearch` with the
    same constructor and pull interface; build it through
    :func:`~repro.core.astar.build_subquery_search` rather than directly
    so the kernel seam stays in one place.

    Args:
        view: a compact view (see :func:`supports_vectorized_search`);
            anything else raises :class:`~repro.errors.SearchError`.
        subquery: the path-shaped sub-query to match.
        matcher: node-match relation φ (consulted once per boundary at
            construction to build the φ bitmasks, never in the hot loop).
        config: τ, n̂ and policy knobs.
        subquery_index: position of this sub-query in the decomposition.
        clock: time source; TBQ passes a shared clock.
    """

    def __init__(
        self,
        view,
        subquery: SubQueryGraph,
        matcher: NodeMatcher,
        config: SearchConfig,
        subquery_index: int = 0,
        clock: Optional[Clock] = None,
    ):
        if not supports_vectorized_search(view):
            raise SearchError(
                "vectorized search kernel needs a compact view exposing "
                "graph / weight_row_array / bounds_row_array; "
                f"{type(view).__name__} does not"
            )
        self.view = view
        self.subquery = subquery
        self.matcher = matcher
        self.config = config
        self.subquery_index = subquery_index
        self.clock = clock if clock is not None else WallClock()
        self.stats = SearchStats()

        graph = view.graph
        self.graph = graph
        self._predicates = subquery.predicates()
        self._num_segments = len(self._predicates)
        self._total_bound = self._num_segments * config.path_bound
        self._geometric = config.scoring is PssMode.GEOMETRIC
        self._generate = config.visited_policy is VisitedPolicy.GENERATE
        # Visited-set keys are single ints (cheaper to build and hash
        # than tuples): coarse = uid*(m+1)+segment — the paper's (node,
        # segment) granularity — and fine additionally mixes in both hop
        # counters.  The encodings are injective, so the sets partition
        # states exactly as the reference's tuple keys do.
        self._seg_mult = self._num_segments + 1
        self._hops_mult = self._total_bound + 1
        self._his_mult = config.path_bound + 1
        # Per-boundary φ-match bitmask over entity ids: node_labels[1..m]
        # close segments 0..m-1; matcher.matches is the φ oracle and is
        # consulted exactly once per boundary, here.
        self._phi = [
            graph.uid_mask(matcher.matches(subquery.query.node(label)))
            for label in subquery.node_labels[1:]
        ]

        # CSR scalars for the hot loop (python ints, no np boxing),
        # memoized on the frozen graph — pure mirrors, shared by every
        # search over it.
        self._indptr_l: List[int] = graph.indptr_list()
        self._nbr_l: List[int] = graph.slot_neighbor_list()
        self._note = getattr(view, "note_touched", None)

        # Lazy per-segment tables and segment-max m(u) columns
        # (array, exact-log array, and their list mirrors).
        self._tables: Dict[int, _SegmentTable] = {}
        self._m_memo: Dict[
            int, Tuple[np.ndarray, np.ndarray, List[float], List[float]]
        ] = {}

        # Struct-of-arrays state pool: append-only scalar columns (an
        # index, once handed to the heap or a PathMatch, stays valid
        # forever).  pool_arrays() exports the columns as flat numpy
        # arrays; the hot loop reads/writes the python columns directly
        # so nothing boxes np scalars per state.
        self._uid_c: List[int] = []
        self._segment_c: List[int] = []
        self._hops_c: List[int] = []
        self._his_c: List[int] = []
        self._lp_c: List[float] = []
        self._ws_c: List[float] = []
        self._priority_c: List[float] = []
        self._parent_c: List[int] = []
        self._slot_c: List[int] = []
        # Encoded visited-policy key per state (fine under EXPAND,
        # coarse under GENERATE): _pop re-checks staleness without
        # rebuilding it.
        self._key_c: List[int] = []
        # Hop-bounded ancestor tuple per state (≤ N̂ + 1 uids): the
        # simple-path check is one containment test, no chain walk.
        self._anc: List[Tuple[int, ...]] = []

        self._queue: MaxHeap[int] = MaxHeap()
        self._visited: Set[int] = set()
        self._best_g: Dict[int, float] = {}
        self._emitted_pivots: Set[int] = set()
        self._exhausted = False
        self._watch = Stopwatch(self.clock)
        self._seed_start_states()

    # ------------------------------------------------------------------
    # precomputed tables
    # ------------------------------------------------------------------
    def _m_any(
        self, segment: int
    ) -> Tuple[np.ndarray, np.ndarray, List[float], List[float]]:
        """``m(u)`` against predicates[segment:] for all nodes, plus logs.

        The elementwise max over the remaining predicates' bounds rows —
        the batched equivalent of the reference's
        ``max_adjacent_weight_any`` scan (max of floats is exact, so the
        values match bit for bit).  Returns the arrays and their list
        mirrors (shared by the seeds and every segment table).
        """
        entry = self._m_memo.get(segment)
        if entry is None:
            rows = [
                self.view.bounds_row_array(predicate)
                for predicate in self._predicates[segment:]
            ]
            m = rows[0] if len(rows) == 1 else np.maximum.reduce(rows)
            log_m = _exact_log_array(m)
            entry = (m, log_m, m.tolist(), log_m.tolist())
            self._m_memo[segment] = entry
        return entry

    def _segment_table(self, segment: int) -> _SegmentTable:
        """Slot-parallel weight/φ/m tables for one segment, built once.

        Built on the segment's first non-isolated expansion — the same
        trigger at which the reference search first materialises the
        segment predicate's weight row — so ``edges_weighted`` stays
        comparable across kernels.
        """
        table = self._tables.get(segment)
        if table is not None:
            return table
        graph = self.graph
        slot_predicate = graph.slot_predicate
        row = self.view.weight_row_array(self._predicates[segment])
        slot_w = row[slot_predicate]
        pos = slot_w > 0.0
        counts = np.zeros(graph.num_nodes, dtype=np.int64)
        starts = graph.indptr[:-1]
        nonempty = starts < graph.indptr[1:]
        if pos.size:
            counts[nonempty] = np.add.reduceat(pos, starts[nonempty])
        log_row = _exact_log_array(row)
        # Weight columns are slot-indexed (per arriving edge); the φ and
        # m(u) columns are node-indexed — same per-arrival read count,
        # num_nodes-sized mirrors instead of num_slots-sized ones.
        _m, _logm, m_cont_l, logm_cont_l = self._m_any(segment)
        if segment + 1 < self._num_segments:
            _m, _logm, m_adv_l, logm_adv_l = self._m_any(segment + 1)
        else:
            m_adv_l = logm_adv_l = None
        table = _SegmentTable(
            pos=pos,
            pos_l=pos.tolist(),
            pos_count=counts.tolist(),
            w_l=slot_w.tolist(),
            lw_l=log_row[slot_predicate].tolist(),
            phi_l=self._phi[segment].tolist(),
            m_cont_l=m_cont_l,
            logm_cont_l=logm_cont_l,
            m_adv_l=m_adv_l,
            logm_adv_l=logm_adv_l,
        )
        self._tables[segment] = table
        return table

    # ------------------------------------------------------------------
    # state pool
    # ------------------------------------------------------------------
    def _alloc(
        self,
        uid: int,
        segment: int,
        hops_total: int,
        hops_in_segment: int,
        log_product: float,
        weight_sum: float,
        parent: int,
        slot: int,
        priority: float,
        key: int = -1,
    ) -> int:
        index = len(self._uid_c)
        self._uid_c.append(uid)
        self._segment_c.append(segment)
        self._hops_c.append(hops_total)
        self._his_c.append(hops_in_segment)
        self._lp_c.append(log_product)
        self._ws_c.append(weight_sum)
        self._priority_c.append(priority)
        self._parent_c.append(parent)
        self._slot_c.append(slot)
        self._key_c.append(key)
        if parent >= 0:
            self._anc.append(self._anc[parent] + (uid,))
        else:
            self._anc.append((uid,))
        return index

    @property
    def pool_size(self) -> int:
        """States allocated so far (pruned arrivals never allocate)."""
        return len(self._uid_c)

    def pool_arrays(self) -> Dict[str, np.ndarray]:
        """The state pool as flat numpy arrays (struct-of-arrays export).

        A snapshot for vector consumers — offline analysis, a future
        sharded/multiprocess driver — of every state the search has
        admitted, column per field.  The search itself reads the python
        columns (np scalar boxing would dominate the pop loop), so this
        materialises on demand rather than per allocation.
        """
        return {
            "uid": np.asarray(self._uid_c, dtype=np.int64),
            "segment": np.asarray(self._segment_c, dtype=np.int32),
            "hops_total": np.asarray(self._hops_c, dtype=np.int32),
            "hops_in_segment": np.asarray(self._his_c, dtype=np.int32),
            "log_product": np.asarray(self._lp_c, dtype=np.float64),
            "weight_sum": np.asarray(self._ws_c, dtype=np.float64),
            "priority": np.asarray(self._priority_c, dtype=np.float64),
            "parent": np.asarray(self._parent_c, dtype=np.int64),
            "slot": np.asarray(self._slot_c, dtype=np.int64),
        }

    # ------------------------------------------------------------------
    # scoring (bit-identical to repro.core.pss on the geometric path)
    # ------------------------------------------------------------------
    def _estimate(
        self,
        log_product: float,
        hops: int,
        weight_sum: float,
        m: float,
        log_m: float,
    ) -> float:
        """ψ̂ (Eq. 7) with the log of ``m`` precomputed.

        The geometric fast path inlines ``estimate_pss`` with
        ``log_weight(m)`` looked up instead of recomputed; the
        arithmetic ablation delegates to the shared function (no
        transcendentals there to amortise).  The expansion loop inlines
        the geometric branch again — this method serves the cold call
        sites (seeds, harvest, arithmetic mode).
        """
        if self._geometric:
            if hops > self._total_bound:
                return 0.0
            if m <= 0.0:
                return 0.0
            if log_product <= _LOG_PRUNE:
                return 0.0
            return math.exp((log_product + log_m) / self._total_bound)
        return estimate_pss(
            log_product,
            hops,
            m,
            self._total_bound,
            mode=self.config.scoring,
            weight_sum=weight_sum,
        )

    # ------------------------------------------------------------------
    # initialisation
    # ------------------------------------------------------------------
    def _seed_start_states(self) -> None:
        seeds = self.matcher.matches(self.subquery.start)
        if not seeds:
            return
        if self._note is not None:
            self._note(seeds)
        _m, _logm, m_l, logm_l = self._m_any(0)
        for uid in seeds:
            priority = self._estimate(0.0, 0, 0.0, m_l[uid], logm_l[uid])
            self._push(uid, 0, 0, 0, 0.0, 0.0, -1, -1, priority)

    # ------------------------------------------------------------------
    # queue plumbing (policy-aware, mirrors SubQuerySearch)
    # ------------------------------------------------------------------
    def _push(
        self,
        uid: int,
        segment: int,
        hops_total: int,
        hops_in_segment: int,
        log_product: float,
        weight_sum: float,
        parent: int,
        slot: int,
        priority: float,
    ) -> None:
        """Admit a generated state subject to the visited policy.

        The expansion loop inlines this decision sequence; this method
        serves the cold call sites (seeds, the TBQ harvest fallthrough)
        and documents the contract both share.
        """
        if self._generate:
            key = uid * self._seg_mult + segment
            if key in self._visited:
                self.stats.pruned_by_visited += 1
                return
            self._visited.add(key)
        else:  # EXPAND: lazy decrease-key with re-opening
            key = (
                (uid * self._seg_mult + segment) * self._hops_mult + hops_total
            ) * self._his_mult + hops_in_segment
            best = self._best_g.get(key)
            if best is not None and log_product <= best:
                self.stats.pruned_by_visited += 1
                return
            self._best_g[key] = log_product
        index = self._alloc(
            uid,
            segment,
            hops_total,
            hops_in_segment,
            log_product,
            weight_sum,
            parent,
            slot,
            priority,
            key,
        )
        self._queue.push(priority, index)
        self.stats.states_generated += 1
        if len(self._queue) > self.stats.max_queue_size:
            self.stats.max_queue_size = len(self._queue)

    def _pop(self) -> Optional[int]:
        best_g = self._best_g
        expand = not self._generate
        while self._queue:
            _priority, index = self._queue.pop_max()
            if expand:
                best = best_g.get(self._key_c[index])
                if best is not None and self._lp_c[index] < best:
                    self.stats.stale_pops += 1
                    continue  # superseded by a better path to this state
            return index
        return None

    # ------------------------------------------------------------------
    # expansion (Algorithm 1 lines 3-10, one shot per pop)
    # ------------------------------------------------------------------
    def _make_match(self, index: int) -> PathMatch:
        graph = self.graph
        slot_edge = graph.slot_edge
        slot_forward = graph.slot_forward
        steps: List[PathStep] = []
        cursor = index
        while True:
            parent = self._parent_c[cursor]
            if parent < 0:
                break
            slot = self._slot_c[cursor]
            steps.append(
                PathStep(
                    edge=graph.edge(int(slot_edge[slot])),
                    forward=bool(slot_forward[slot]),
                )
            )
            cursor = parent
        steps.reverse()
        return PathMatch(
            subquery_index=self.subquery_index,
            path=Path(start=self._uid_c[cursor], steps=tuple(steps)),
            pivot_uid=self._uid_c[index],
            pss=self._priority_c[index],
        )

    def _admit_harvest(
        self,
        uid: int,
        segment: int,
        hops_total: int,
        hops_in_segment: int,
        log_product: float,
        weight_sum: float,
        parent: int,
        slot: int,
        priority: float,
        harvest: Dict[int, PathMatch],
    ) -> None:
        """Route one goal arrival into M̂_i (Algorithm 2, lines 10-11).

        The caller already τ-checked; the harvest keeps the best match
        per pivot, mirroring the reference ``_admit`` goal branch.
        """
        if self._generate:
            key = uid * self._seg_mult + segment
            if key in self._visited:
                self.stats.pruned_by_visited += 1
                return
            self._visited.add(key)
        existing = harvest.get(uid)
        if existing is None:
            self.stats.goals_emitted += 1
        elif priority <= existing.pss:
            return
        index = self._alloc(
            uid,
            segment,
            hops_total,
            hops_in_segment,
            log_product,
            weight_sum,
            parent,
            slot,
            priority,
        )
        harvest[uid] = self._make_match(index)

    def _expand(
        self, index: int, segment: int, harvest: Optional[Dict[int, PathMatch]]
    ) -> None:
        # The loop body inlines _estimate (geometric), the τ check and
        # _push: at ~5 generated states per pop, the method-call overhead
        # alone was costing as much as the decisions themselves.  Every
        # branch mirrors the reference _arrivals/_admit/_push sequence
        # exactly — same order, same counters.
        his = self._his_c[index]
        bound = self.config.path_bound
        if his >= bound:
            return  # segment exhausted its n̂ hops; only advances survive
        uid = self._uid_c[index]
        if self._note is not None:
            self._note((uid,))
        start = self._indptr_l[uid]
        end = self._indptr_l[uid + 1]
        if start == end:
            return
        table = self._segment_table(segment)
        stats = self.stats
        stats.pruned_by_tau += (end - start) - table.pos_count[uid]
        if end - start >= _GATHER_MIN_DEGREE:
            # Hub row: gather the τ-positive slots with one vectorized
            # mask before the scalar admit loop.
            candidates = (np.flatnonzero(table.pos[start:end]) + start).tolist()
        else:
            candidates = range(start, end)
        anc = self._anc[index]
        log_product = self._lp_c[index]
        weight_sum = self._ws_c[index]
        hops1 = self._hops_c[index] + 1
        his1 = his + 1
        continuing = his1 < bound
        segment1 = segment + 1
        advance_is_goal = segment1 == self._num_segments
        estimating = continuing or not advance_is_goal
        nbr_l = self._nbr_l
        pos_l = table.pos_l
        w_l = table.w_l
        lw_l = table.lw_l
        phi_l = table.phi_l
        m_adv_l = table.m_adv_l
        logm_adv_l = table.logm_adv_l
        m_cont_l = table.m_cont_l
        logm_cont_l = table.logm_cont_l
        geometric = self._geometric
        generate = self._generate
        total_bound = self._total_bound
        hops_over = hops1 > total_bound
        tau = self.config.tau
        exp = math.exp
        visited = self._visited
        best_g = self._best_g
        seg_mult = self._seg_mult
        hops_mult = self._hops_mult
        his_mult = self._his_mult
        # Pool columns and the heap, bound as locals: at ~5 generated
        # states per pop the attribute/method dispatch would cost as
        # much as the appends themselves.  The heap counter and queue
        # length are synced back after the loop (only this loop pushes
        # between pops, so the local view is exact).
        anc_c = self._anc
        uid_app = self._uid_c.append
        seg_app = self._segment_c.append
        hops_app = self._hops_c.append
        his_app = self._his_c.append
        lp_app = self._lp_c.append
        ws_app = self._ws_c.append
        pr_app = self._priority_c.append
        par_app = self._parent_c.append
        slot_app = self._slot_c.append
        key_app = self._key_c.append
        anc_app = anc_c.append
        queue = self._queue
        heap = queue._heap
        heap_push = heapq.heappush
        counter = queue._counter
        queue_size = len(heap)
        max_queue = stats.max_queue_size
        pool_n = len(self._uid_c)
        touched: List[int] = [] if estimating else None
        for slot in candidates:
            if not pos_l[slot]:
                continue  # weight <= 0 (already counted as τ prunes)
            neighbor = nbr_l[slot]
            if neighbor in anc:
                continue  # simple paths only
            lp = log_product + lw_l[slot]
            ws = weight_sum + w_l[slot]
            if phi_l[neighbor]:
                if advance_is_goal:
                    priority = (
                        (0.0 if lp <= _LOG_PRUNE else exp(lp / hops1))
                        if geometric
                        else ws / hops1
                    )
                else:
                    touched.append(neighbor)
                    m = m_adv_l[neighbor]
                    if geometric:
                        priority = (
                            0.0
                            if hops_over or m <= 0.0 or lp <= _LOG_PRUNE
                            else exp((lp + logm_adv_l[neighbor]) / total_bound)
                        )
                    else:
                        priority = self._estimate(lp, hops1, ws, m, 0.0)
                # τ then visited policy then push (the reference _admit
                # sequence, inlined; harvest goals take the cold method).
                if priority < tau:
                    stats.pruned_by_tau += 1
                elif harvest is not None and advance_is_goal:
                    self._admit_harvest(
                        neighbor, segment1, hops1, 0, lp, ws, index, slot,
                        priority, harvest,
                    )
                    pool_n = len(self._uid_c)  # harvest may allocate
                else:
                    if generate:
                        key = neighbor * seg_mult + segment1
                        if key in visited:
                            stats.pruned_by_visited += 1
                            key = None
                        else:
                            visited.add(key)
                    else:
                        key = (
                            (neighbor * seg_mult + segment1) * hops_mult + hops1
                        ) * his_mult
                        best = best_g.get(key)
                        if best is not None and lp <= best:
                            stats.pruned_by_visited += 1
                            key = None
                        else:
                            best_g[key] = lp
                    if key is not None:
                        uid_app(neighbor)
                        seg_app(segment1)
                        hops_app(hops1)
                        his_app(0)
                        lp_app(lp)
                        ws_app(ws)
                        pr_app(priority)
                        par_app(index)
                        slot_app(slot)
                        key_app(key)
                        anc_app(anc + (neighbor,))
                        heap_push(heap, (-priority, counter, pool_n))
                        counter += 1
                        pool_n += 1
                        queue_size += 1
                        stats.states_generated += 1
                        if queue_size > max_queue:
                            max_queue = queue_size
            if continuing:
                touched.append(neighbor)
                m = m_cont_l[neighbor]
                if geometric:
                    priority = (
                        0.0
                        if hops_over or m <= 0.0 or lp <= _LOG_PRUNE
                        else exp((lp + logm_cont_l[neighbor]) / total_bound)
                    )
                else:
                    priority = self._estimate(lp, hops1, ws, m, 0.0)
                if priority < tau:
                    stats.pruned_by_tau += 1
                else:
                    if generate:
                        key = neighbor * seg_mult + segment
                        if key in visited:
                            stats.pruned_by_visited += 1
                            key = None
                        else:
                            visited.add(key)
                    else:
                        key = (
                            (neighbor * seg_mult + segment) * hops_mult + hops1
                        ) * his_mult + his1
                        best = best_g.get(key)
                        if best is not None and lp <= best:
                            stats.pruned_by_visited += 1
                            key = None
                        else:
                            best_g[key] = lp
                    if key is not None:
                        uid_app(neighbor)
                        seg_app(segment)
                        hops_app(hops1)
                        his_app(his1)
                        lp_app(lp)
                        ws_app(ws)
                        pr_app(priority)
                        par_app(index)
                        slot_app(slot)
                        key_app(key)
                        anc_app(anc + (neighbor,))
                        heap_push(heap, (-priority, counter, pool_n))
                        counter += 1
                        pool_n += 1
                        queue_size += 1
                        stats.states_generated += 1
                        if queue_size > max_queue:
                            max_queue = queue_size
            else:
                stats.pruned_by_bound += 1
        queue._counter = counter
        stats.max_queue_size = max_queue
        if touched and self._note is not None:
            # Estimate bookkeeping: the reference touches a neighbour
            # whenever it computes an Eq. 7 estimate for it.
            self._note(touched)

    def step(self, harvest: Optional[Dict[int, PathMatch]] = None) -> Optional[PathMatch]:
        """One pop-and-expand iteration (same contract as the reference)."""
        if self._exhausted:
            return None
        if (
            self.config.max_expansions is not None
            and self.stats.expansions >= self.config.max_expansions
        ):
            self._exhausted = True
            return None
        index = self._pop()
        if index is None:
            self._exhausted = True
            return None
        self.stats.expansions += 1
        self.clock.tick()

        segment = self._segment_c[index]
        if segment == self._num_segments:
            pivot = self._uid_c[index]
            if pivot in self._emitted_pivots:
                return None  # EXPAND policy can re-pop a pivot; keep first
            self._emitted_pivots.add(pivot)
            self.stats.goals_emitted += 1
            return self._make_match(index)

        self._expand(index, segment, harvest)
        return None

    # ------------------------------------------------------------------
    # public pull interface
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def next_match(self) -> Optional[PathMatch]:
        """Run until the next match pops; ``None`` when exhausted."""
        while not self._exhausted:
            match = self.step()
            if match is not None:
                self.stats.elapsed_seconds = self._watch.elapsed()
                return match
        self.stats.elapsed_seconds = self._watch.elapsed()
        return None

    def run(self, k: int) -> List[PathMatch]:
        """Collect up to ``k`` matches (Algorithm 1 in one call)."""
        if k < 1:
            raise SearchError("k must be at least 1")
        matches: List[PathMatch] = []
        while len(matches) < k:
            match = self.next_match()
            if match is None:
                break
            matches.append(match)
        return matches
