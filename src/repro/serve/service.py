"""Batched query serving on top of the SGQ/TBQ engine.

The engine answers one query at a time; a production deployment sees a
*workload* — many queries, often repeated, often with per-query latency
budgets.  :class:`QueryService` is the serving seam between the two:

- a pluggable **execution backend** (:mod:`repro.serve.backends`) runs
  the searches: ``inline`` (caller's thread — the reference), ``thread``
  (request-level concurrency, shared caches, GIL-bound compute) or
  ``process`` (true multi-core parallelism; each worker bootstraps a
  private engine once from a pickled
  :class:`~repro.core.engine.EngineSpec` and reuses it across requests);
- a shared :class:`~repro.serve.cache.SemanticGraphCache` backs every
  query's semantic-graph view on the shared-memory backends, so the
  workload amortises edge weighting and ``m(u)`` derivation across
  queries; process workers each own a private cache with the same role;
- **decomposition memoization**: repeated query shapes (same nodes, edges,
  pivot policy) reuse the minCost decomposition instead of re-running the
  Eq. 1 cost model — per service on shared-memory backends, per worker on
  the process backend;
- an optional **result-level answer cache**
  (:mod:`repro.serve.answer_cache`): exact answers memoized under a
  canonical query fingerprint (permutation/alias-insensitive, bound to
  the graph epoch) with singleflight dedup, front-of-process so hits
  skip the execution backend entirely;
- **per-query deadlines** map onto the existing
  :class:`~repro.core.time_bounded.TimeBoundedCoordinator` — a request
  with ``deadline=T`` runs the paper's TBQ (Algorithms 2-3) with the time
  already spent waiting in the worker queue subtracted from ``T`` (a
  deadline bounds latency, not service time), while requests without a
  deadline get exact SGQ semantics.

``submit`` returns a future; ``submit_batch`` and ``search_many`` are the
batch conveniences.  Exact (SGQ) results are bit-identical to calling
``engine.search`` sequentially on **every** backend: caches store pure
functions of the graph/space, memoized decompositions are deterministic,
worker scheduling never reorders per-query state, and a process worker's
engine is built from a pickle-faithful copy of the same graph, space and
library.  The cross-backend conformance suite
(``tests/test_serve_backends.py``) and CI gate 4
(``scripts/bench_smoke.py``) pin this.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.config import SearchConfig
from repro.core.engine import EngineSpec, SemanticGraphQueryEngine, build_engine
from repro.core.results import QueryResult, QueryResultPayload
from repro.embedding.predicate_space import PredicateSpace, SpaceCacheStats
from repro.errors import ServeError
from repro.kg.compact import CompactGraph, SharedCompactGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.sharded import (
    SHARD_STRATEGIES,
    ShardCacheStats,
    ShardedGraph,
    ShardedViewFactory,
    SharedShardedGraph,
)
from repro.kg.shm import leaked_segments
from repro.query.model import QueryGraph
from repro.query.transform import TransformationLibrary
from repro.serve.answer_cache import (
    AnswerCache,
    AnswerCacheStats,
    EngineFingerprint,
    canonicalize,
)
from repro.serve.backends import (
    EXECUTION_BACKENDS,
    MIN_TIME_BOUND,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    WorkerSnapshot,
    _EngineRunner,
    aggregate_snapshots,
    diff_snapshots,
)
from repro.serve.cache import CacheStats, SemanticGraphCache
from repro.serve.faults import FaultPlan
from repro.serve.resilience import (
    BackoffPolicy,
    CircuitBreaker,
    ResilienceStats,
    SupervisedBackend,
)

__all__ = [
    "QueryRequest",
    "QueryService",
    "ServiceStats",
    "ServingStatsReport",
    "MIN_TIME_BOUND",
    "query_shape_key",
]

#: A service's shared-memory graph lease: one segment for the single
#: compact graph, one segment per shard for the sharded store.
GraphLease = Union[SharedCompactGraph, SharedShardedGraph]


@dataclass(frozen=True)
class QueryRequest:
    """One unit of serving work.

    ``deadline`` (seconds) switches the request to the time-bounded TBQ
    path; ``None`` means exact SGQ.  ``pivot``/``strategy`` pass through to
    decomposition; ``tag`` is an opaque caller label echoed in errors.

    Requests are picklable (the query graph is plain value objects), so
    one request value serves every execution backend unchanged.
    """

    query: QueryGraph
    k: int = 10
    deadline: Optional[float] = None
    pivot: Optional[str] = None
    strategy: str = "min_cost"
    tag: Optional[str] = None


@dataclass
class ServiceStats:
    """Serving counters (monotonic over the service's lifetime).

    Writers mutate the live object under the service's stats lock;
    reading the attributes directly is unsynchronised (fine for quiescent
    services and monotonic counters, but ``in_flight`` combines three of
    them) — monitoring code should use :meth:`QueryService.stats_snapshot`.

    ``backend`` names the execution backend serving the counters, so a
    report can say which stats-aggregation semantics apply (shared
    structures vs summed per-worker copies — see
    :meth:`QueryService.serving_stats`).

    The resilience counters (``retries`` … ``fallbacks``) stay zero on
    an unsupervised service; under supervision they mirror the
    :class:`~repro.serve.resilience.SupervisedBackend` event stream.  A
    shed or timed-out request is *also* counted in ``failed`` (its
    future resolves with an error); a retried request is counted
    ``completed`` or ``failed`` exactly once, by its final outcome.

    The answer-cache counters (``answer_hits`` … ``answer_invalidations``)
    stay zero without an :class:`~repro.serve.answer_cache.AnswerCache`.
    A hit or collapsed follower is still ``submitted`` and ``completed``
    — it just never reached the execution backend.  ``answer_evictions``
    and ``answer_invalidations`` live inside the cache and are mirrored
    into :meth:`QueryService.stats_snapshot` copies (the live object
    keeps them zero).
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    time_bounded: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    shed: int = 0
    crashes: int = 0
    timeouts: int = 0
    fallbacks: int = 0
    answer_hits: int = 0
    answer_misses: int = 0
    singleflight_collapsed: int = 0
    answer_evictions: int = 0
    answer_invalidations: int = 0
    backend: str = "thread"

    @property
    def in_flight(self) -> int:
        return self.submitted - self.completed - self.failed


@dataclass(frozen=True)
class ServingStatsReport:
    """Cache/memo statistics with their aggregation scope spelled out.

    ``scope`` is ``"shared"`` when the numbers read live shared
    structures (inline/thread backends: one weight cache, one space, one
    memo) and ``"per-worker-sum"`` when they are summed over per-worker
    copies (process backend) — a distinction reports must label, because
    a summed hit rate describes pool-wide behaviour, not any single
    cache, and misses repeated once per worker are expected there.

    The answer cache is the exception: it sits front-of-process in the
    service, one instance regardless of backend, so ``answers`` carries
    its own ``answer_scope`` — always ``"shared"``, even while the
    worker caches above report a per-worker sum.

    ``shards`` carries per-shard labelled cache rows on a sharded
    service (inline/thread backends, where the one in-process shard set
    is readable live — cf. the per-worker ``WorkerSnapshot`` rows);
    empty otherwise.  On the process backend each worker owns a private
    shard set, so only the summed totals above are reported.
    """

    backend: str
    scope: str
    workers_reporting: int
    queries: int
    cache: CacheStats
    space: SpaceCacheStats
    memo_hits: int
    memo_misses: int
    answers: Optional[AnswerCacheStats] = None
    answer_scope: str = "shared"
    shards: Tuple[ShardCacheStats, ...] = ()

    @property
    def memo_hit_rate(self) -> float:
        lookups = self.memo_hits + self.memo_misses
        return self.memo_hits / lookups if lookups else 0.0

    def scope_label(self) -> str:
        if self.scope == "per-worker-sum":
            return (
                f"per-worker sum, {self.workers_reporting} worker"
                f"{'s' if self.workers_reporting != 1 else ''} reporting"
            )
        return "shared"

    def describe(self) -> str:
        lines = [
            f"stats scope [{self.backend} backend]: {self.scope_label()}",
            f"weight cache ({self.scope_label()}): {self.cache.describe()}",
            f"space {self.space.describe()}",
            f"decomposition memo: hits={self.memo_hits} "
            f"misses={self.memo_misses} "
            f"hit_rate={self.memo_hit_rate:.3f}",
        ]
        if self.answers is not None:
            # Deliberately not scope_label(): the answer cache is one
            # front-side instance even over the process backend.
            lines.append(
                f"answer cache ({self.answer_scope}): "
                f"{self.answers.describe()}"
            )
        if self.shards:
            lines.append(f"per-shard caches ({len(self.shards)} shards):")
            for row in self.shards:
                lines.append(f"  {row.describe()}")
        return "\n".join(lines)


def query_shape_key(
    query: QueryGraph, pivot: Optional[str], strategy: str
) -> Tuple:
    """A canonical, hashable key for a query's decomposition inputs.

    Two structurally identical query graphs (same labelled nodes with the
    same names/types, same labelled edges) decompose identically under the
    same pivot policy, so they may share one memoized decomposition.
    """
    # None-ness is encoded explicitly: a target node (name=None) and a
    # specific node literally named "" are different queries.
    nodes = tuple(
        sorted(
            (n.label, n.etype is None, n.etype or "", n.name is None, n.name or "")
            for n in query.nodes()
        )
    )
    edges = tuple(
        sorted((e.label, e.source, e.predicate, e.target) for e in query.edges())
    )
    return (nodes, edges, pivot or "", strategy)


def _share_graph(spec: EngineSpec) -> Tuple[EngineSpec, GraphLease]:
    """Rewrite a compact spec to ship its graph by shared-memory reference.

    Freezes the CSR kernel if the spec does not already carry one,
    publishes its columns into one segment, and returns the worker-bound
    spec — ``kg`` and ``compact_graph`` dropped, ``graph_handle`` set, so
    its pickle is O(metadata) — together with the owning lease the caller
    must keep alive while workers are attached and close afterwards.

    A sharded spec publishes one segment per shard instead and ships a
    :class:`~repro.kg.sharded.ShardedGraphHandle`; the returned
    :class:`~repro.kg.sharded.SharedShardedGraph` multi-lease releases
    its segments in reverse publication order on close.
    """
    if not spec.compact:
        raise ServeError(
            "shared_graph needs the compact CSR kernel; build the service "
            "with compact=True (--view compact)"
        )
    if spec.sharded_graph is not None:
        lease = spec.sharded_graph.to_shared()
        shared_spec = replace(
            spec, kg=None, sharded_graph=None, sharded_handle=lease.handle
        )
        return shared_spec, lease
    compact_graph = spec.compact_graph
    if compact_graph is None:
        assert spec.kg is not None
        compact_graph = CompactGraph.freeze(spec.kg)
    lease = compact_graph.to_shared()
    shared_spec = replace(
        spec, kg=None, compact_graph=None, graph_handle=lease.handle
    )
    return shared_spec, lease


class QueryService:
    """Concurrent, cache-backed front-end over one query engine.

    Args:
        engine: the engine to serve (shared-memory backends execute on it
            directly; the process backend ships ``engine.to_spec()`` to
            its workers).  May be ``None`` when ``spec`` is given — the
            process backend then never builds a parent-side engine at
            all.
        spec: a picklable :class:`~repro.core.engine.EngineSpec`
            describing the engine; required (directly or via ``engine``)
            for the process backend.
        backend: ``"inline"``, ``"thread"`` (default) or ``"process"``.
        max_workers: worker-pool size for the pooled backends (ignored by
            ``inline``).  ``workers`` is an alias that wins when given.
        cache: explicit :class:`SemanticGraphCache` to share (e.g. between
            services over the same graph); default builds a private one.
            Shared-memory backends only — process workers own private
            caches by construction.
        memoize_decompositions: reuse decompositions across identical
            query shapes.
        max_memoized: LRU bound on the decomposition memo.
        start_method: multiprocessing start method for the process
            backend (``None`` = platform default).
        shared_graph: process backend only — publish the frozen
            :class:`~repro.kg.compact.CompactGraph` into one shared-memory
            segment and ship workers a
            :class:`~repro.kg.compact.CompactGraphHandle` instead of the
            graph arrays.  Workers attach zero-copy (O(metadata) warmup,
            one physical graph copy pool-wide); results stay bit-identical.
            Requires a compact spec.  The service owns the segment: it is
            unlinked on :meth:`close` (after the pool is down) and by a
            finalizer if the owner crashes.
        supervised: wrap the backend in a
            :class:`~repro.serve.resilience.SupervisedBackend` — retries
            for retryable failures, in-place pool rebuild on
            ``BrokenProcessPool`` (releasing and re-acquiring the shared
            graph lease), circuit-breaker fallback to an inline engine,
            optional hard timeout and load shedding.  Implied by any of
            ``fault_plan`` / ``retry_policy`` / ``hard_timeout`` /
            ``max_pending``.
        fault_plan: a :class:`~repro.serve.faults.FaultPlan` injected
            into the serving path (process workers receive it through
            the spec; shared-memory backends activate it in-process) for
            deterministic chaos runs.
        retry_policy: a :class:`~repro.serve.resilience.BackoffPolicy`
            overriding the default retry budget and backoff shape.
        hard_timeout: per-request wall-clock bound (seconds) on future
            resolution; fires :class:`~repro.errors.RequestTimeoutError`.
            Distinct from a TBQ ``deadline``, which budgets the search.
        max_pending: bounded admission — submissions beyond this many
            unresolved requests raise
            :class:`~repro.errors.OverloadError` instead of queueing.
        breaker_threshold / breaker_cooldown: consecutive pool breaks
            that open the circuit, and seconds before a half-open probe.
        answer_cache: result-level answer caching
            (:mod:`repro.serve.answer_cache`).  An ``int`` enables a
            private LRU of that capacity; an
            :class:`~repro.serve.answer_cache.AnswerCache` instance is
            shared (e.g. across services over the same graph — it binds
            to this engine's fingerprint and self-clears on epoch
            change); ``None``/``0`` (default) disables.  The cache sits
            *front-of-process*: hits and collapsed singleflight
            followers never reach the execution backend — a hit skips
            IPC on the process backend and, under supervision, consumes
            no retry budget and never counts toward ``max_pending``
            admission.  Only exact (SGQ) requests participate;
            time-bounded requests always execute.
        answer_cache_ttl: optional per-entry time-to-live (seconds) for
            the private cache built from an ``int`` ``answer_cache``.

    Use as a context manager or call :meth:`close` to release the pool.
    """

    def __init__(
        self,
        engine: Optional[SemanticGraphQueryEngine] = None,
        *,
        spec: Optional[EngineSpec] = None,
        backend: str = "thread",
        max_workers: int = 4,
        workers: Optional[int] = None,
        cache: Optional[SemanticGraphCache] = None,
        memoize_decompositions: bool = True,
        max_memoized: int = 1024,
        start_method: Optional[str] = None,
        shared_graph: bool = False,
        supervised: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[BackoffPolicy] = None,
        hard_timeout: Optional[float] = None,
        max_pending: Optional[int] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
        answer_cache: Union[None, int, AnswerCache] = None,
        answer_cache_ttl: Optional[float] = None,
    ):
        if backend not in EXECUTION_BACKENDS:
            raise ServeError(
                f"unknown execution backend {backend!r} "
                f"(expected one of {EXECUTION_BACKENDS})"
            )
        if workers is not None:
            max_workers = workers
        if max_workers < 1:
            raise ServeError(f"max_workers must be at least 1, got {max_workers}")
        if max_memoized < 1:
            raise ServeError(f"max_memoized must be at least 1, got {max_memoized}")
        if engine is None and spec is None:
            raise ServeError("QueryService needs an engine or an EngineSpec")
        if shared_graph and backend != "process":
            raise ServeError(
                "shared_graph only applies to the process backend — "
                "shared-memory backends already share the one in-process "
                "graph"
            )
        if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
            raise ServeError(
                f"fault_plan must be a FaultPlan, got {type(fault_plan).__name__}"
            )
        supervised = bool(
            supervised
            or fault_plan is not None
            or retry_policy is not None
            or hard_timeout is not None
            or max_pending is not None
        )

        self.backend_name = backend
        self.workers = max_workers if backend != "inline" else 1
        self.stats = ServiceStats(backend=backend)
        self._stats_lock = threading.Lock()
        self._lock = threading.Lock()
        self._closed = False
        self._stats_baseline: Optional[WorkerSnapshot] = None
        self._graph_lease: Optional[GraphLease] = None
        self._supervised = supervised
        self._fault_plan = fault_plan
        self._retry_policy = (
            retry_policy if retry_policy is not None else BackoffPolicy()
        )
        self._hard_timeout = hard_timeout
        self._max_pending = max_pending
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown

        if backend == "process":
            if cache is not None:
                raise ServeError(
                    "the process backend cannot share a SemanticGraphCache "
                    "across workers — each worker owns a private cache; "
                    "drop the cache argument"
                )
            if spec is None:
                assert engine is not None
                spec = engine.to_spec()  # raises on unpicklable setups
            self.engine = engine
            self.cache = None
            # The pre-share spec (graph arrays still by value) is what a
            # pool *rebuild* republishes the shared segment from, and
            # what the circuit-breaker fallback builds its inline engine
            # from; self.spec below is the worker-bound (possibly
            # handle-carrying) variant of the current pool generation.
            self._base_spec = spec
            self._shared_graph = shared_graph
            self._pool_settings = dict(
                memoize_decompositions=memoize_decompositions,
                max_memoized=max_memoized,
                start_method=start_method,
            )
            self.spec: Optional[EngineSpec] = spec
            # Fingerprint from the pre-share base spec: a pool rebuild
            # republishes the same graph, so the epoch is unchanged.
            self._init_answer_cache(
                answer_cache,
                answer_cache_ttl,
                EngineFingerprint.from_spec(self._base_spec),
            )
            inner: ExecutionBackend = self._build_pool()
            self._backend: ExecutionBackend = (
                self._supervise(inner, rebuildable=True) if supervised else inner
            )
            return

        if engine is None:
            assert spec is not None
            engine = build_engine(spec)
        if cache is not None:
            engine.weight_cache = cache
        elif engine.weight_cache is None:
            engine.weight_cache = SemanticGraphCache()
        self.engine = engine
        self.cache = engine.weight_cache
        self.spec = spec
        faults = None
        if fault_plan is not None and fault_plan.active:
            # In-process injection: crashes surface as WorkerCrashError
            # (killing the only process would defeat the point).
            faults = fault_plan.activate(allow_kill=False)
        runner = _EngineRunner(
            engine,
            memoize_decompositions=memoize_decompositions,
            max_memoized=max_memoized,
            shape_key=query_shape_key,
            faults=faults,
        )
        self._runner = runner
        self._init_answer_cache(
            answer_cache, answer_cache_ttl, EngineFingerprint.from_engine(engine)
        )
        on_complete = None if supervised else self._record_outcome
        if backend == "inline":
            inner = InlineBackend(runner, on_complete=on_complete)
        else:
            inner = ThreadBackend(runner, self.workers, on_complete=on_complete)
        self._backend = (
            self._supervise(inner, rebuildable=False) if supervised else inner
        )

    def _init_answer_cache(
        self,
        answer_cache: Union[None, int, AnswerCache],
        answer_cache_ttl: Optional[float],
        fingerprint: EngineFingerprint,
    ) -> None:
        """Resolve the ``answer_cache`` argument and bind the epoch."""
        if answer_cache is None or answer_cache == 0:
            if answer_cache_ttl is not None:
                raise ServeError(
                    "answer_cache_ttl needs an answer cache; pass "
                    "answer_cache=N to enable one"
                )
            self._answer_cache: Optional[AnswerCache] = None
            self._fingerprint: Optional[EngineFingerprint] = None
            return
        if isinstance(answer_cache, AnswerCache):
            if answer_cache_ttl is not None:
                raise ServeError(
                    "a shared AnswerCache instance carries its own ttl; "
                    "drop answer_cache_ttl or pass a capacity int instead"
                )
            cache = answer_cache
        elif isinstance(answer_cache, int) and not isinstance(answer_cache, bool):
            cache = AnswerCache(answer_cache, ttl_seconds=answer_cache_ttl)
        else:
            raise ServeError(
                "answer_cache must be None, a capacity int or an "
                f"AnswerCache, got {type(answer_cache).__name__}"
            )
        cache.bind(fingerprint)
        self._answer_cache = cache
        self._fingerprint = fingerprint

    def _supervise(
        self, inner: ExecutionBackend, *, rebuildable: bool
    ) -> SupervisedBackend:
        return SupervisedBackend(
            inner,
            policy=self._retry_policy,
            hard_timeout=self._hard_timeout,
            max_pending=self._max_pending,
            breaker=CircuitBreaker(
                threshold=self._breaker_threshold,
                cooldown_seconds=self._breaker_cooldown,
            ),
            rebuild=self._rebuild_pool if rebuildable else None,
            fallback_factory=self._build_fallback if rebuildable else None,
            on_complete=self._record_outcome,
            on_event=self._record_event,
        )

    def _build_pool(self) -> ProcessBackend:
        """Construct a process pool generation from the base spec.

        Stamps the current fault plan into the worker-bound spec (so
        chaos rides the same vehicle as the engine description) and, for
        shared-graph services, publishes a fresh shared-memory segment.
        On construction failure the just-acquired lease is released with
        a stranded-segment probe — the pool never came up, so nobody
        else will.
        """
        spec = self._base_spec
        plan = self._fault_plan
        if plan is not None and plan.active:
            spec = replace(spec, fault_plan=plan)
        lease = None
        if self._shared_graph:
            spec, lease = _share_graph(spec)
        try:
            backend = ProcessBackend(
                spec,
                self.workers,
                on_complete=None if self._supervised else self._record_outcome,
                **self._pool_settings,
            )
        except BaseException:
            if lease is not None:
                self._release_lease(lease)
            raise
        self._graph_lease = lease
        self.spec = spec
        return backend

    def _rebuild_pool(self) -> ProcessBackend:
        """Replace a broken pool in place (supervisor callback).

        Runs under the supervisor's pool lock, strictly after the broken
        pool's shutdown was initiated: release the old shared-memory
        lease (probing that its segment really left ``/dev/shm``),
        advance the fault plan one epoch so a chaos plan does not crash
        the replacement pool forever, and re-acquire exactly one fresh
        lease via :meth:`_build_pool`.
        """
        lease, self._graph_lease = self._graph_lease, None
        if lease is not None:
            self._release_lease(lease)
        if self._fault_plan is not None:
            self._fault_plan = self._fault_plan.next_epoch()
        return self._build_pool()

    @staticmethod
    def _release_lease(lease: GraphLease) -> None:
        """Release an owned shm lease, asserting its segments vanished.

        Duck-typed over single- and multi-segment leases: a sharded
        lease exposes ``names`` (one segment per shard, released in
        reverse publication order by its ``close``), a single-graph
        lease only ``name`` — every segment is probed against
        ``/dev/shm`` after the release.
        """
        names = tuple(getattr(lease, "names", None) or (lease.name,))
        lease.close()
        leaked = set(leaked_segments())
        still_present = [name for name in names if name in leaked]
        if still_present:
            raise ServeError(
                f"shared-memory segment(s) {still_present!r} still present "
                "in /dev/shm after their lease was released — refusing to "
                "continue with a leak"
            )

    def _build_fallback(self) -> ExecutionBackend:
        """Degraded-mode backend: an inline engine in this process.

        Built from the pre-share base spec with the fault plan stripped
        (the fallback exists to survive chaos, not to re-inject it).
        """
        spec = replace(self._base_spec, fault_plan=None)
        engine = build_engine(spec, weight_cache=SemanticGraphCache())
        runner = _EngineRunner(
            engine,
            shape_key=query_shape_key,
            **{
                k: v
                for k, v in self._pool_settings.items()
                if k in ("memoize_decompositions", "max_memoized")
            },
        )
        return InlineBackend(runner, on_complete=None)

    # ------------------------------------------------------------------
    # construction conveniences
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        kg: KnowledgeGraph,
        space: PredicateSpace,
        library: Optional[TransformationLibrary] = None,
        config: Optional[SearchConfig] = None,
        *,
        compact: bool = False,
        view_factory=None,
        assembly_kernel: str = "vectorized",
        search_kernel: str = "auto",
        backend: str = "thread",
        workers: Optional[int] = None,
        shards: int = 0,
        shard_strategy: str = "hash",
        shard_seed: int = 0,
        shard_fanout: str = "inline",
        **kwargs,
    ) -> "QueryService":
        """Build an engine (or spec) and wrap it in one call.

        ``compact=True`` serves every query off the frozen CSR kernel
        (:mod:`repro.core.compact_view`); ``view_factory`` passes a custom
        view seam through (shared-memory backends only — it may not
        pickle); ``assembly_kernel`` picks the TA assembly implementation
        and ``search_kernel`` the per-sub-query A* implementation;
        ``backend``/``workers`` pick the execution backend and pool size.
        ``shared_graph=True`` (process backend, with ``compact=True``)
        publishes the frozen kernel into shared memory so workers attach
        zero-copy instead of unpickling graph arrays.  ``shards=N``
        (with ``compact=True``) partitions the frozen kernel into N
        entity-owned shards (:mod:`repro.kg.sharded`) served through the
        rank-merged fan-out view — per-shard caches, per-shard shm
        segments under ``shared_graph``; ``shard_strategy`` /
        ``shard_seed`` pick the partitioner and ``shard_fanout``
        (``"inline"``/``"pool"``) the gather schedule.  Exact results
        are identical under every combination.
        """
        if shards < 0:
            raise ServeError(f"shards must be non-negative, got {shards}")
        if shards:
            if not compact:
                raise ServeError(
                    "shards need the compact CSR kernel; build the service "
                    "with compact=True (--view compact)"
                )
            if view_factory is not None:
                raise ServeError(
                    "pass either shards or view_factory, not both — the "
                    "sharded store brings its own fan-out view factory"
                )
            if shard_strategy not in SHARD_STRATEGIES:
                raise ServeError(
                    f"unknown shard strategy {shard_strategy!r} "
                    f"(expected one of {SHARD_STRATEGIES})"
                )
        elif shard_fanout != "inline":
            raise ServeError(
                f"shard_fanout={shard_fanout!r} needs shards; pass shards=N"
            )
        if view_factory is not None:
            if backend == "process":
                raise ServeError(
                    "the process backend cannot ship a custom view_factory "
                    "to its workers; use compact=True or a shared-memory "
                    "backend"
                )
            engine = SemanticGraphQueryEngine(
                kg,
                space,
                library,
                config,
                compact=compact,
                view_factory=view_factory,
                assembly_kernel=assembly_kernel,
                search_kernel=search_kernel,
            )
            return cls(engine, backend=backend, workers=workers, **kwargs)
        if shards:
            # Partition once in the parent; every backend (and every
            # process worker, via the spec pickle or the per-shard shm
            # handles) serves the same shard set.  The spec drops ``kg``
            # so all backends uniformly query through the sharded facade.
            sharded = ShardedGraph.build(
                kg, shards, strategy=shard_strategy, seed=shard_seed
            )
            spec = EngineSpec(
                kg=None,
                space=space,
                library=library,
                config=config,
                compact=True,
                assembly_kernel=assembly_kernel,
                search_kernel=search_kernel,
                sharded_graph=sharded,
                shard_fanout=shard_fanout,
            )
            if backend == "process":
                return cls(spec=spec, backend=backend, workers=workers, **kwargs)
            return cls(
                build_engine(spec), spec=spec, backend=backend,
                workers=workers, **kwargs,
            )
        spec = EngineSpec(
            kg=kg,
            space=space,
            library=library,
            config=config,
            compact=compact,
            assembly_kernel=assembly_kernel,
            search_kernel=search_kernel,
        )
        if backend == "process":
            if compact:
                # Freeze once in the parent and ship the snapshot, so N
                # workers do not each redo the O(V+E) freeze.
                from repro.kg.compact import CompactGraph

                spec = replace(spec, compact_graph=CompactGraph.freeze(kg))
            return cls(spec=spec, backend=backend, workers=workers, **kwargs)
        return cls(build_engine(spec), backend=backend, workers=workers, **kwargs)

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(
        self,
        query: QueryGraph,
        k: int = 10,
        *,
        deadline: Optional[float] = None,
        pivot: Optional[str] = None,
        strategy: str = "min_cost",
        tag: Optional[str] = None,
    ) -> "Future[QueryResult]":
        """Enqueue one query; returns a future resolving to its result."""
        return self.submit_request(
            QueryRequest(
                query=query,
                k=k,
                deadline=deadline,
                pivot=pivot,
                strategy=strategy,
                tag=tag,
            )
        )

    def submit_request(self, request: QueryRequest) -> "Future[QueryResult]":
        # The backend submit happens under the same lock close() takes
        # before shutting the backend down, so a closed-check that passes
        # can never race into a shut-down pool.
        with self._lock:
            if self._closed:
                raise ServeError("QueryService is closed")
            # Count before executing: the inline backend completes the
            # request inside submit, and `submitted` must already cover it
            # when its completion is recorded.
            with self._stats_lock:
                self.stats.submitted += 1
                if request.deadline is not None:
                    self.stats.time_bounded += 1
            # TBQ results are clock-dependent (anytime semantics): they
            # bypass the answer cache unconditionally.
            if self._answer_cache is not None and request.deadline is None:
                return self._submit_cached(request)
            try:
                return self._backend.submit(request, time.time())
            except BaseException:
                # The request never entered the pool (e.g. a broken
                # process pool): no on_complete will ever fire, so settle
                # the accounting here or in_flight drifts forever.
                self._record_outcome(False)
                raise

    def _submit_cached(self, request: QueryRequest) -> "Future[QueryResult]":
        """Front-side answer-cache path for one exact request.

        Runs under ``self._lock``.  Hits and singleflight followers are
        served without touching the execution backend at all — so on
        the process backend a hit skips IPC, and under supervision a
        hit can never be shed by ``max_pending`` admission or spend
        retry budget (it never becomes an attempt).
        """
        cache = self._answer_cache
        assert cache is not None and self._fingerprint is not None
        key = canonicalize(request, self._fingerprint)
        state, value = cache.acquire(key)
        if state == "hit":
            with self._stats_lock:
                self.stats.answer_hits += 1
            self._record_outcome(True)
            future: "Future[QueryResult]" = Future()
            future.set_result(value.to_result())
            return future
        if state == "follow":
            with self._stats_lock:
                self.stats.singleflight_collapsed += 1
            # Outcome is recorded when the leader settles the flight.
            return value
        flight = value
        with self._stats_lock:
            self.stats.answer_misses += 1
        try:
            inner = self._backend.submit(request, time.time())
        except BaseException as exc:
            self._record_outcome(False)
            followers, _payload, _error = cache.complete(flight, error=exc)
            for follower in followers:
                self._record_outcome(False)
                follower.set_exception(exc)
            raise
        inner.add_done_callback(lambda fut: self._settle_flight(flight, fut))
        return inner

    def _settle_flight(self, flight, fut: "Future[QueryResult]") -> None:
        """Leader completion: cache the payload, resolve the followers.

        Runs as a done-callback on the leader's backend future — i.e.
        after the leader's own outcome was recorded by the backend (or
        synchronously inside ``submit`` on the inline backend).  Each
        follower is a distinct submitted request, so it gets its own
        ``_record_outcome`` before its future resolves, preserving the
        completion-before-resolution ordering every backend guarantees.
        """
        cache = self._answer_cache
        assert cache is not None
        try:
            error = fut.exception()
        except BaseException as exc:  # pragma: no cover - cancelled leader
            error = exc
        if error is None:
            payload = QueryResultPayload.from_result(fut.result())
            followers, payload, _ = cache.complete(flight, payload=payload)
            for follower in followers:
                self._record_outcome(True)
                follower.set_result(payload.to_result())
        else:
            followers, _, _ = cache.complete(flight, error=error)
            for follower in followers:
                self._record_outcome(False)
                follower.set_exception(error)

    def _record_outcome(self, success: bool) -> None:
        # Runs on the execution path, strictly before the request's
        # future resolves (see ExecutionBackend.on_complete).  Under
        # supervision it fires exactly once per request (final outcome),
        # never once per attempt.
        with self._stats_lock:
            if success:
                self.stats.completed += 1
            else:
                self.stats.failed += 1

    _EVENT_COUNTERS = {
        "retry": "retries",
        "pool_rebuild": "pool_rebuilds",
        "shed": "shed",
        "crash": "crashes",
        "timeout": "timeouts",
        "fallback": "fallbacks",
    }

    def _record_event(self, kind: str) -> None:
        # Mirror of the SupervisedBackend event stream into ServiceStats.
        name = self._EVENT_COUNTERS.get(kind)
        if name is None:  # pragma: no cover - supervisor contract
            return
        with self._stats_lock:
            setattr(self.stats, name, getattr(self.stats, name) + 1)

    def submit_batch(
        self, requests: Sequence[Union[QueryRequest, QueryGraph]]
    ) -> List["Future[QueryResult]"]:
        """Enqueue a batch; futures are returned in submission order."""
        return [self.submit_request(self._coerce(r)) for r in requests]

    def search_many(
        self,
        queries: Sequence[Union[QueryRequest, QueryGraph]],
        k: int = 10,
        *,
        deadline: Optional[float] = None,
    ) -> List[QueryResult]:
        """Run a batch to completion; results in submission order.

        Bare :class:`QueryGraph` items pick up ``k``/``deadline``;
        :class:`QueryRequest` items keep their own parameters.
        """
        futures = [
            self.submit_request(self._coerce(item, k=k, deadline=deadline))
            for item in queries
        ]
        return [future.result() for future in futures]

    @staticmethod
    def _coerce(
        item: Union[QueryRequest, QueryGraph],
        k: int = 10,
        deadline: Optional[float] = None,
    ) -> QueryRequest:
        if isinstance(item, QueryRequest):
            return item
        return QueryRequest(query=item, k=k, deadline=deadline)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> ServiceStats:
        """A consistent copy of the counters, taken under the lock.

        Eviction/invalidation counts live inside the
        :class:`AnswerCache` (they happen on cache-internal paths, not
        per-request) and are mirrored into the snapshot here.
        """
        answers = (
            self._answer_cache.stats() if self._answer_cache is not None else None
        )
        with self._stats_lock:
            snapshot = replace(self.stats)
        if answers is not None:
            snapshot.answer_evictions = answers.evictions
            snapshot.answer_invalidations = answers.invalidations
        return snapshot

    def warmup(self, timeout: Optional[float] = None) -> int:
        """Make the first real request pay no construction latency.

        For the process backend this spins up (up to) all workers and
        builds their engines; shared-memory backends are warm by
        construction.  Returns the number of workers confirmed ready.
        """
        return self._backend.warmup(timeout=timeout)

    def worker_snapshots(self) -> List[WorkerSnapshot]:
        """Per-worker statistics rows straight from the backend."""
        return self._backend.snapshots()

    def shard_stats(self) -> List[ShardCacheStats]:
        """Cumulative per-shard cache rows (sharded inline/thread only).

        The shared-memory backends serve off one in-process shard set,
        so its per-shard :class:`~repro.kg.sharded.SemanticGraphCache`
        and private-row space counters are readable live.  Process
        workers each own a private shard set; only their summed totals
        travel back through :class:`WorkerSnapshot`, so this returns
        ``[]`` there (and on any unsharded service).
        """
        engine = self.engine
        if engine is None:
            return []
        factory = getattr(engine, "view_factory", None)
        if isinstance(factory, ShardedViewFactory):
            return factory.shard_stats()
        return []

    def serving_stats(self) -> ServingStatsReport:
        """Cache/memo statistics with their aggregation scope labelled.

        Shared-memory backends read the live shared cache, space and
        memo (scope ``"shared"``); the process backend sums the latest
        per-worker snapshots (scope ``"per-worker-sum"`` — each worker
        warms its own caches, so pool-wide misses scale with the worker
        count by design).  :meth:`reset_serving_stats` rebases the
        counters so per-phase rates can be reported on any backend.
        """
        snapshots = self._backend.snapshots()
        total = aggregate_snapshots(snapshots)
        with self._stats_lock:
            baseline = self._stats_baseline
        total = diff_snapshots(total, baseline)
        if total is None:
            total = WorkerSnapshot(
                worker_id="none",
                queries=0,
                cache=CacheStats(),
                space=SpaceCacheStats(),
                memo_hits=0,
                memo_misses=0,
            )
        scope = (
            "per-worker-sum"
            if self._backend.stats_scope == "per-worker"
            else "shared"
        )
        return ServingStatsReport(
            backend=self.backend_name,
            scope=scope,
            workers_reporting=len(snapshots),
            queries=total.queries,
            cache=total.cache,
            space=total.space,
            memo_hits=total.memo_hits,
            memo_misses=total.memo_misses,
            answers=(
                self._answer_cache.stats()
                if self._answer_cache is not None
                else None
            ),
            # One front-side instance regardless of backend — labelled
            # shared even when the worker caches above are summed.
            answer_scope="shared",
            shards=tuple(self.shard_stats()),
        )

    def reset_serving_stats(self) -> None:
        """Zero the cache/memo counters reported by :meth:`serving_stats`.

        Backend-neutral: shared-memory backends could reset the live
        structures, but process workers cannot be reached synchronously —
        so *all* backends rebase against a baseline snapshot instead
        (entries/gauges are never rebased; they describe the present).
        Lets a workload driver report per-phase hit rates — e.g. reset
        after a cold pass so the warm pass's rate is not diluted.
        """
        total = aggregate_snapshots(self._backend.snapshots())
        with self._stats_lock:
            self._stats_baseline = total

    @property
    def memo_hits(self) -> int:
        """Decomposition-memo hits (summed per worker on ``process``)."""
        total = aggregate_snapshots(self._backend.snapshots())
        return total.memo_hits if total is not None else 0

    @property
    def memo_misses(self) -> int:
        total = aggregate_snapshots(self._backend.snapshots())
        return total.memo_misses if total is not None else 0

    @property
    def memo_hit_rate(self) -> float:
        total = aggregate_snapshots(self._backend.snapshots())
        if total is None:
            return 0.0
        lookups = total.memo_hits + total.memo_misses
        return total.memo_hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Reject new work and (optionally) wait for in-flight queries."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Outside the lock (a draining close must not block submitters
        # into a lock wait; they observe `_closed` and get a clean
        # ServeError), but strictly after `_closed` is set: any submit
        # that already passed its closed check finished its
        # backend.submit while it held the lock, so the backend never
        # sees a submit after shutdown.
        self._backend.close(wait=wait)
        # Strictly after the pool is down: unlinking first would strand a
        # worker that had not attached yet (workers attach lazily on
        # their first task).  Workers that are already attached only hold
        # mappings, which die with their processes.  Released through the
        # leak probe — on a sharded service that walks every shard
        # segment (reverse publication order) and asserts each left
        # /dev/shm.
        lease, self._graph_lease = self._graph_lease, None
        if lease is not None:
            self._release_lease(lease)

    @property
    def graph_lease(self) -> Optional[GraphLease]:
        """The shared-memory graph lease (``None`` unless shared_graph).

        Under supervision the lease changes identity across pool
        rebuilds (release old, publish fresh); read it anew rather than
        caching the object.
        """
        return self._graph_lease

    @property
    def supervised(self) -> bool:
        """Whether the backend runs under a :class:`SupervisedBackend`."""
        return self._supervised

    @property
    def answer_cache(self) -> Optional[AnswerCache]:
        """The front-side answer cache (``None`` when disabled)."""
        return self._answer_cache

    def resilience(self) -> Optional[ResilienceStats]:
        """Supervision counters (``None`` on an unsupervised service).

        The same events are mirrored into :class:`ServiceStats`; this
        report adds what only the supervisor knows — per-rebuild
        recovery latency and the live circuit-breaker state.
        """
        backend = self._backend
        if isinstance(backend, SupervisedBackend):
            return backend.resilience_stats()
        return None

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
