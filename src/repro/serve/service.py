"""Batched query serving on top of the SGQ/TBQ engine.

The engine answers one query at a time; a production deployment sees a
*workload* — many queries, often repeated, often with per-query latency
budgets.  :class:`QueryService` is the serving seam between the two:

- a **worker pool** executes SGQ/TBQ searches concurrently — safe
  because every query owns its view and search state, while the shared
  structures are either lock-protected (the weight cache, the memo) or
  lazily-built memo dicts whose writes are idempotent pure-function
  results, which CPython's GIL publishes atomically (a free-threaded
  backend must add locking to ``NodeMatcher`` first — see ROADMAP);
- a shared :class:`~repro.serve.cache.SemanticGraphCache` backs every
  query's semantic-graph view, so the workload amortises edge weighting
  and ``m(u)`` derivation across queries;
- **decomposition memoization**: repeated query shapes (same nodes, edges,
  pivot policy) reuse the minCost decomposition instead of re-running the
  Eq. 1 cost model;
- **per-query deadlines** map onto the existing
  :class:`~repro.core.time_bounded.TimeBoundedCoordinator` — a request
  with ``deadline=T`` runs the paper's TBQ (Algorithms 2-3) with the time
  already spent waiting in the worker queue subtracted from ``T`` (a
  deadline bounds latency, not service time), while requests without a
  deadline get exact SGQ semantics.

``submit`` returns a future; ``submit_batch`` and ``search_many`` are the
batch conveniences.  Results are bit-identical to calling
``engine.search`` sequentially: the cache stores pure functions of the
graph/space, the memoized decompositions are deterministic, and worker
scheduling never reorders per-query state.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.config import SearchConfig
from repro.core.engine import SemanticGraphQueryEngine
from repro.core.results import QueryResult
from repro.embedding.predicate_space import PredicateSpace
from repro.errors import ServeError
from repro.kg.graph import KnowledgeGraph
from repro.query.decompose import Decomposition
from repro.query.model import QueryGraph
from repro.query.transform import TransformationLibrary
from repro.serve.cache import LruMap, SemanticGraphCache


@dataclass(frozen=True)
class QueryRequest:
    """One unit of serving work.

    ``deadline`` (seconds) switches the request to the time-bounded TBQ
    path; ``None`` means exact SGQ.  ``pivot``/``strategy`` pass through to
    decomposition; ``tag`` is an opaque caller label echoed in errors.
    """

    query: QueryGraph
    k: int = 10
    deadline: Optional[float] = None
    pivot: Optional[str] = None
    strategy: str = "min_cost"
    tag: Optional[str] = None


# A deadline that has already elapsed in the queue still gets a sliver of
# search budget: the TBQ coordinator needs a positive bound, and a
# harvest-what-you-can answer beats an error for an overloaded service.
MIN_TIME_BOUND = 1e-3


@dataclass
class ServiceStats:
    """Serving counters (monotonic over the service's lifetime).

    Writers mutate the live object under the service lock; reading the
    attributes directly is unsynchronised (fine for quiescent services
    and monotonic counters, but ``in_flight`` combines three of them) —
    monitoring code should use :meth:`QueryService.stats_snapshot`.

    Decomposition-memo hit counts live on the memo itself — see
    :attr:`QueryService.memo_hits` / :attr:`QueryService.memo_hit_rate`.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    time_bounded: int = 0

    @property
    def in_flight(self) -> int:
        return self.submitted - self.completed - self.failed


def query_shape_key(
    query: QueryGraph, pivot: Optional[str], strategy: str
) -> Tuple:
    """A canonical, hashable key for a query's decomposition inputs.

    Two structurally identical query graphs (same labelled nodes with the
    same names/types, same labelled edges) decompose identically under the
    same pivot policy, so they may share one memoized decomposition.
    """
    # None-ness is encoded explicitly: a target node (name=None) and a
    # specific node literally named "" are different queries.
    nodes = tuple(
        sorted(
            (n.label, n.etype is None, n.etype or "", n.name is None, n.name or "")
            for n in query.nodes()
        )
    )
    edges = tuple(
        sorted((e.label, e.source, e.predicate, e.target) for e in query.edges())
    )
    return (nodes, edges, pivot or "", strategy)


class QueryService:
    """Concurrent, cache-backed front-end over one query engine.

    Args:
        engine: the engine to serve.  The service attaches its shared
            weight cache to it (``engine.weight_cache``); an engine that
            already carries a cache keeps it.
        max_workers: worker-pool size.  CPython's GIL means CPU-bound
            searches do not parallelise, but the pool still provides
            request-level concurrency (deadline isolation, interleaved
            batches) and is the seam a free-threaded or multi-process
            backend plugs into.
        cache: explicit :class:`SemanticGraphCache` to share (e.g. between
            services over the same graph); default builds a private one.
        memoize_decompositions: reuse decompositions across identical
            query shapes.
        max_memoized: LRU bound on the decomposition memo.

    Use as a context manager or call :meth:`close` to release the pool.
    """

    def __init__(
        self,
        engine: SemanticGraphQueryEngine,
        *,
        max_workers: int = 4,
        cache: Optional[SemanticGraphCache] = None,
        memoize_decompositions: bool = True,
        max_memoized: int = 1024,
    ):
        if max_workers < 1:
            raise ServeError(f"max_workers must be at least 1, got {max_workers}")
        if max_memoized < 1:
            raise ServeError(f"max_memoized must be at least 1, got {max_memoized}")
        if cache is not None:
            engine.weight_cache = cache
        elif engine.weight_cache is None:
            engine.weight_cache = SemanticGraphCache()
        self.engine = engine
        self.cache = engine.weight_cache
        self.stats = ServiceStats()
        self._memoize = memoize_decompositions
        self._memo = LruMap(max_memoized)
        self._lock = threading.Lock()
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    # construction conveniences
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        kg: KnowledgeGraph,
        space: PredicateSpace,
        library: Optional[TransformationLibrary] = None,
        config: Optional[SearchConfig] = None,
        *,
        compact: bool = False,
        view_factory=None,
        assembly_kernel: str = "vectorized",
        search_kernel: str = "auto",
        **kwargs,
    ) -> "QueryService":
        """Build an engine and wrap it in one call.

        ``compact=True`` serves every query off the frozen CSR kernel
        (:mod:`repro.core.compact_view`); ``view_factory`` passes a custom
        view seam through; ``assembly_kernel`` picks the TA assembly
        implementation and ``search_kernel`` the per-sub-query A*
        implementation.  Results are identical under every combination.
        """
        engine = SemanticGraphQueryEngine(
            kg,
            space,
            library,
            config,
            compact=compact,
            view_factory=view_factory,
            assembly_kernel=assembly_kernel,
            search_kernel=search_kernel,
        )
        return cls(engine, **kwargs)

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(
        self,
        query: QueryGraph,
        k: int = 10,
        *,
        deadline: Optional[float] = None,
        pivot: Optional[str] = None,
        strategy: str = "min_cost",
        tag: Optional[str] = None,
    ) -> "Future[QueryResult]":
        """Enqueue one query; returns a future resolving to its result."""
        return self.submit_request(
            QueryRequest(
                query=query,
                k=k,
                deadline=deadline,
                pivot=pivot,
                strategy=strategy,
                tag=tag,
            )
        )

    def submit_request(self, request: QueryRequest) -> "Future[QueryResult]":
        # The executor submit happens under the same lock close() takes
        # before shutting the pool down, so a closed-check that passes
        # can never race into a shut-down executor.
        with self._lock:
            if self._closed:
                raise ServeError("QueryService is closed")
            future = self._executor.submit(self._execute, request, time.perf_counter())
            self.stats.submitted += 1
            if request.deadline is not None:
                self.stats.time_bounded += 1
        return future

    def submit_batch(
        self, requests: Sequence[Union[QueryRequest, QueryGraph]]
    ) -> List["Future[QueryResult]"]:
        """Enqueue a batch; futures are returned in submission order."""
        return [self.submit_request(self._coerce(r)) for r in requests]

    def search_many(
        self,
        queries: Sequence[Union[QueryRequest, QueryGraph]],
        k: int = 10,
        *,
        deadline: Optional[float] = None,
    ) -> List[QueryResult]:
        """Run a batch to completion; results in submission order.

        Bare :class:`QueryGraph` items pick up ``k``/``deadline``;
        :class:`QueryRequest` items keep their own parameters.
        """
        futures = [
            self.submit_request(self._coerce(item, k=k, deadline=deadline))
            for item in queries
        ]
        return [future.result() for future in futures]

    @staticmethod
    def _coerce(
        item: Union[QueryRequest, QueryGraph],
        k: int = 10,
        deadline: Optional[float] = None,
    ) -> QueryRequest:
        if isinstance(item, QueryRequest):
            return item
        return QueryRequest(query=item, k=k, deadline=deadline)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _decomposition_for(self, request: QueryRequest) -> Optional[Decomposition]:
        if not self._memoize:
            return None
        key = query_shape_key(request.query, request.pivot, request.strategy)
        with self._lock:
            memoized = self._memo.get(key)  # LruMap counts the hit/miss
            if memoized is not None:
                return memoized
        decomposition = self.engine.decompose(
            request.query, pivot=request.pivot, strategy=request.strategy
        )
        with self._lock:
            self._memo.put(key, decomposition)
        return decomposition

    def _execute(self, request: QueryRequest, submitted_at: float) -> QueryResult:
        try:
            decomposition = self._decomposition_for(request)
            if request.deadline is not None:
                # A deadline is a promise about *latency*, not service
                # time: the wait in the worker queue already spent part of
                # the budget, so only the remainder goes to the search.
                queue_wait = time.perf_counter() - submitted_at
                budget = max(request.deadline - queue_wait, MIN_TIME_BOUND)
                result = self.engine.search_time_bounded(
                    request.query,
                    request.k,
                    time_bound=budget,
                    pivot=request.pivot,
                    strategy=request.strategy,
                    decomposition=decomposition,
                )
            else:
                result = self.engine.search(
                    request.query,
                    request.k,
                    pivot=request.pivot,
                    strategy=request.strategy,
                    decomposition=decomposition,
                )
        except BaseException:
            with self._lock:
                self.stats.failed += 1
            raise
        with self._lock:
            self.stats.completed += 1
        return result

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> ServiceStats:
        """A consistent copy of the counters, taken under the lock."""
        with self._lock:
            return replace(self.stats)

    @property
    def memo_hits(self) -> int:
        """Decomposition-memo hits (from the memo's own counters)."""
        with self._lock:
            return self._memo.hits

    @property
    def memo_misses(self) -> int:
        with self._lock:
            return self._memo.misses

    @property
    def memo_hit_rate(self) -> float:
        with self._lock:
            lookups = self._memo.hits + self._memo.misses
            return self._memo.hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Reject new work and (optionally) wait for in-flight queries."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # Inside the lock: a submit that already passed its closed
            # check has finished its executor.submit before we get here.
            self._executor.shutdown(wait=False)
        if wait:
            self._executor.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
