"""Deterministic, picklable fault injection for the serving stack.

Chaos testing is only trustworthy when it is reproducible: a crash that
happens on a different request every run produces flaky gates and
undebuggable failures.  This module therefore separates the *plan* from
the *runtime*:

- :class:`FaultPlan` is a frozen, picklable description of which faults
  fire and when, keyed on **per-worker request ordinals** (the Nth
  request a given worker executes), so the same plan against the same
  workload injects the same faults bit-for-bit.  It rides into process
  workers on :attr:`repro.core.engine.EngineSpec.fault_plan` — the same
  vehicle that carries the engine description — so no side channel is
  needed.
- :class:`FaultInjector` is the mutable per-process runtime produced by
  :meth:`FaultPlan.activate`; each worker owns one and consults it
  before every request.

Plans are *epoch-scoped*: ``epochs`` counts the pool generations the
plan poisons.  The supervisor calls :meth:`FaultPlan.next_epoch` on
every pool rebuild, so with the default ``epochs=1`` a rebuilt pool
comes up healthy — which is exactly the property the chaos gate needs
(crash, recover, converge to the fault-free answers).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import (
    GraphError,
    ServeError,
    TransientEngineError,
    WorkerCrashError,
)
from repro.utils.rng import derive_rng

__all__ = ["FaultPlan", "FaultInjector"]


def _ordinals(raw: object, clause: str) -> Tuple[int, ...]:
    """Normalise a fault-ordinal collection: sorted, unique, 1-based."""
    try:
        values = sorted({int(v) for v in raw})  # type: ignore[union-attr]
    except (TypeError, ValueError):
        raise ServeError(f"fault plan {clause!r} ordinals must be integers, got {raw!r}")
    if any(v < 1 for v in values):
        raise ServeError(f"fault plan {clause!r} ordinals must be >= 1, got {values}")
    return tuple(values)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable chaos plan for serving workers.

    All ``*_at`` fields hold 1-based per-worker request ordinals: a
    worker consults the plan before its Nth request and fires every
    fault listed for N.  Fields:

    - ``crash_at``: hard-kill the worker (``SIGKILL`` in process
      workers, :class:`~repro.errors.WorkerCrashError` elsewhere).
    - ``transient_at``: raise :class:`~repro.errors.TransientEngineError`
      (retryable).
    - ``fatal_at``: raise a plain :class:`~repro.errors.ServeError`
      (fatal to the request — the supervisor must *not* retry it).
    - ``latency_at`` / ``latency_seconds``: sleep before executing; the
      actual delay is ``latency_seconds`` scaled by a seeded per-ordinal
      jitter in ``[0.5, 1.5)`` so it is deterministic per (seed, ordinal).
    - ``fail_shm_attach``: poison worker *initialisation* with a
      :class:`~repro.errors.GraphError`, simulating a vanished
      shared-memory segment.
    - ``epochs``: how many pool generations the plan stays active;
      :meth:`next_epoch` decrements it on every rebuild.
    """

    crash_at: Tuple[int, ...] = ()
    transient_at: Tuple[int, ...] = ()
    fatal_at: Tuple[int, ...] = ()
    latency_at: Tuple[int, ...] = ()
    latency_seconds: float = 0.0
    fail_shm_attach: bool = False
    seed: int = 0
    epochs: int = 1

    def __post_init__(self) -> None:
        for clause in ("crash_at", "transient_at", "fatal_at", "latency_at"):
            object.__setattr__(self, clause, _ordinals(getattr(self, clause), clause))
        if self.latency_seconds < 0:
            raise ServeError(f"latency_seconds must be >= 0, got {self.latency_seconds}")
        if self.latency_at and self.latency_seconds == 0:
            raise ServeError("latency_at given without a positive latency_seconds")
        if self.epochs < 0:
            raise ServeError(f"epochs must be >= 0, got {self.epochs}")

    @property
    def active(self) -> bool:
        """Whether this plan still injects anything this epoch."""
        if self.epochs <= 0:
            return False
        return bool(
            self.crash_at
            or self.transient_at
            or self.fatal_at
            or self.latency_at
            or self.fail_shm_attach
        )

    def next_epoch(self) -> "FaultPlan":
        """The plan for the next pool generation (one fewer epoch)."""
        return replace(self, epochs=max(self.epochs - 1, 0))

    def activate(self, *, allow_kill: bool = False) -> "FaultInjector":
        """Produce the mutable per-process runtime for this plan.

        ``allow_kill=True`` makes ``crash_at`` faults actually
        ``SIGKILL`` the current process — only ever set inside process
        workers; shared-memory backends raise
        :class:`~repro.errors.WorkerCrashError` instead.
        """
        return FaultInjector(self, allow_kill=allow_kill)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``crash@3; transient@2; seed=11``."""
        parts = []
        for label, at in (
            ("crash", self.crash_at),
            ("transient", self.transient_at),
            ("fatal", self.fatal_at),
        ):
            if at:
                parts.append(f"{label}@{','.join(str(v) for v in at)}")
        if self.latency_at:
            # No unit suffix: describe() output is itself a valid parse()
            # spec, so a printed plan can be replayed verbatim.
            joined = ",".join(str(v) for v in self.latency_at)
            parts.append(f"latency@{joined}:{self.latency_seconds:g}")
        if self.fail_shm_attach:
            parts.append("shm-attach")
        parts.append(f"seed={self.seed}")
        parts.append(f"epochs={self.epochs}")
        return "; ".join(parts)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a CLI fault-plan spec.

        Format: semicolon-separated clauses, e.g.
        ``"crash@3;transient@2,5;fatal@9;latency@4:0.05;shm-attach;seed=7;epochs=2"``

        - ``crash@N[,N...]`` / ``transient@...`` / ``fatal@...``: fault
          on those per-worker request ordinals.
        - ``latency@N[,N...]:SECONDS``: sleep before those requests.
        - ``shm-attach``: fail worker init as if the shm segment vanished.
        - ``seed=N`` / ``epochs=N``: plan seed and pool-generation scope.
        """
        fields_: dict = {}
        for raw_clause in text.split(";"):
            clause = raw_clause.strip()
            if not clause:
                continue
            if clause == "shm-attach":
                fields_["fail_shm_attach"] = True
                continue
            if "=" in clause:
                key, _, value = clause.partition("=")
                key = key.strip()
                if key not in ("seed", "epochs"):
                    raise ServeError(f"unknown fault-plan setting {key!r} in {clause!r}")
                try:
                    fields_[key] = int(value)
                except ValueError:
                    raise ServeError(f"fault-plan setting {clause!r} needs an integer")
                continue
            kind, sep, spec = clause.partition("@")
            if not sep:
                raise ServeError(f"unparseable fault-plan clause {clause!r}")
            kind = kind.strip()
            if kind == "latency":
                at_part, colon, seconds_part = spec.partition(":")
                if not colon:
                    raise ServeError(
                        f"latency clause needs a duration, e.g. 'latency@4:0.05', got {clause!r}"
                    )
                try:
                    fields_["latency_seconds"] = float(seconds_part)
                except ValueError:
                    raise ServeError(f"latency duration must be a number in {clause!r}")
                fields_["latency_at"] = _ordinals(at_part.split(","), clause)
                continue
            if kind not in ("crash", "transient", "fatal"):
                raise ServeError(f"unknown fault kind {kind!r} in {clause!r}")
            fields_[f"{kind}_at"] = _ordinals(spec.split(","), clause)
        if not fields_:
            raise ServeError(f"empty fault-plan spec: {text!r}")
        return cls(**fields_)


@dataclass
class FaultInjector:
    """Mutable per-process runtime state of a :class:`FaultPlan`.

    One injector lives in each worker process (or in the single shared
    runner for the inline/thread backends, where the request counter is
    service-wide rather than per-worker).
    """

    plan: FaultPlan
    allow_kill: bool = False
    _count: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def requests_seen(self) -> int:
        with self._lock:
            return self._count

    def on_worker_init(self) -> None:
        """Fault hook run once when a worker bootstraps its engine."""
        if self.plan.active and self.plan.fail_shm_attach:
            raise GraphError(
                "injected shared-memory attach failure "
                f"(fault plan: {self.plan.describe()})"
            )

    def on_request(self) -> None:
        """Fault hook run before each request this process executes."""
        plan = self.plan
        if not plan.active:
            return
        with self._lock:
            self._count += 1
            ordinal = self._count
        if ordinal in plan.latency_at:
            jitter = 0.5 + float(derive_rng(plan.seed, f"fault-latency:{ordinal}").random())
            time.sleep(plan.latency_seconds * jitter)
        if ordinal in plan.crash_at:
            if self.allow_kill:
                os.kill(os.getpid(), signal.SIGKILL)  # never returns
            raise WorkerCrashError(
                f"injected worker crash on request #{ordinal} "
                f"(fault plan: {plan.describe()})"
            )
        if ordinal in plan.fatal_at:
            raise ServeError(
                f"injected fatal engine error on request #{ordinal} "
                f"(fault plan: {plan.describe()})"
            )
        if ordinal in plan.transient_at:
            raise TransientEngineError(
                f"injected transient engine error on request #{ordinal} "
                f"(fault plan: {plan.describe()})"
            )
