"""Pluggable execution backends for :class:`~repro.serve.service.QueryService`.

The serving layer used to be welded to one ``ThreadPoolExecutor``.  Under
CPython's GIL that pool serialises CPU-bound SGQ searches — an 8-core box
serves one query's worth of compute no matter how many workers it has.
This module is the seam that breaks the weld.  Three backends share one
contract (:class:`ExecutionBackend`):

- ``inline`` — no pool at all; ``submit`` runs the query on the calling
  thread and returns an already-resolved future.  The zero-concurrency
  reference every other backend must match bit-for-bit, and the cheapest
  option for single-tenant batch jobs;
- ``thread`` — the historical ``ThreadPoolExecutor``.  Request-level
  concurrency (deadline isolation, interleaved batches) and shared-cache
  warmth, but no CPU parallelism under the GIL;
- ``process`` — a ``ProcessPoolExecutor`` whose workers each bootstrap a
  **private engine once** from a pickled
  :class:`~repro.core.engine.EngineSpec` (pool initializer + per-worker
  global, never a per-task rebuild) and reuse it, with its own
  :class:`~repro.serve.cache.SemanticGraphCache`, decomposition memo and
  predicate-space row cache, across every request the worker serves.
  True multi-core parallelism; requests and results cross the process
  boundary as picklable :class:`~repro.serve.service.QueryRequest` /
  :class:`~repro.core.results.QueryResultPayload` values.

Results are bit-identical across backends for exact (SGQ) requests: the
engine is deterministic, caches only change cost, and a worker's engine
is built from a pickle-faithful copy of the same graph/space/library.
TBQ requests (``deadline=``) are time-dependent by design and only
promise the paper's anytime semantics, on every backend.

Statistics flow *back* through the same seam: every backend reports
:class:`WorkerSnapshot` rows (weight-cache, space row-cache and memo
counters per worker).  The shared-memory backends report one live row;
the process backend piggybacks a snapshot on each task result and keeps
the latest row per worker pid, so aggregation never needs a control
round-trip into the pool.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

import multiprocessing

from repro.core.engine import EngineSpec, SemanticGraphQueryEngine, build_engine
from repro.core.results import QueryResult, QueryResultPayload
from repro.embedding.predicate_space import SpaceCacheStats
from repro.errors import ServeError
from repro.query.decompose import Decomposition
from repro.serve.cache import CacheStats, LruMap, SemanticGraphCache

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platform
    _resource = None

EXECUTION_BACKENDS = ("inline", "thread", "process")


def _max_rss_kb() -> int:
    """Peak RSS of the calling process in KiB (0 where unsupported).

    ``ru_maxrss`` is KiB on Linux; per-worker rows make the shared-graph
    memory win measurable (N private graph copies vs one mapped segment).
    """
    if _resource is None:
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)

# A deadline that has already elapsed in the queue still gets a sliver of
# search budget: the TBQ coordinator needs a positive bound, and a
# harvest-what-you-can answer beats an error for an overloaded service.
MIN_TIME_BOUND = 1e-3


@dataclass(frozen=True)
class WorkerSnapshot:
    """One worker's cumulative serving-side statistics.

    ``worker_id`` is ``"shared"`` for the shared-memory backends (one
    row for the whole pool) and the worker pid for process workers.
    Counters are monotonic over the worker's lifetime; consumers diff
    against a baseline to report per-phase rates.  ``max_rss_kb`` is a
    gauge — the reporting process's peak RSS when the snapshot was taken
    — so memory can be compared per worker across backends.
    """

    worker_id: str
    queries: int
    cache: CacheStats
    space: SpaceCacheStats
    memo_hits: int
    memo_misses: int
    max_rss_kb: int = 0


def execute_request(
    engine: SemanticGraphQueryEngine,
    request,  # QueryRequest; untyped to avoid a service<->backends cycle
    submitted_wall: float,
    *,
    decomposition: Optional[Decomposition] = None,
) -> QueryResult:
    """Run one request against an engine, honouring its deadline budget.

    A deadline is a promise about *latency*, not service time: the wait
    between submission and execution already spent part of the budget, so
    only the remainder goes to the TBQ search.  Queue wait is measured on
    the wall clock (``time.time``) because submission and execution may
    happen in different processes, where ``perf_counter`` epochs are not
    comparable.
    """
    if request.deadline is not None:
        queue_wait = time.time() - submitted_wall
        budget = max(request.deadline - queue_wait, MIN_TIME_BOUND)
        return engine.search_time_bounded(
            request.query,
            request.k,
            time_bound=budget,
            pivot=request.pivot,
            strategy=request.strategy,
            decomposition=decomposition,
        )
    return engine.search(
        request.query,
        request.k,
        pivot=request.pivot,
        strategy=request.strategy,
        decomposition=decomposition,
    )


class _EngineRunner:
    """Engine + decomposition memo + stats: the per-worker execution core.

    Shared by the inline and thread backends directly (one runner, many
    threads) and instantiated once per process-pool worker.  The memo is
    lock-protected; decompositions are deterministic pure functions of
    the (query shape, pivot policy), so races only duplicate work.
    """

    def __init__(
        self,
        engine: SemanticGraphQueryEngine,
        *,
        memoize_decompositions: bool = True,
        max_memoized: int = 1024,
        shape_key: Optional[Callable] = None,
        faults=None,  # Optional[repro.serve.faults.FaultInjector]
    ):
        self.engine = engine
        self._memoize = memoize_decompositions
        self._memo = LruMap(max_memoized)
        self._lock = threading.Lock()
        if shape_key is None:
            from repro.serve.service import query_shape_key

            shape_key = query_shape_key
        self._shape_key = shape_key
        self._faults = faults
        self._queries = 0

    def decomposition_for(self, request) -> Optional[Decomposition]:
        if not self._memoize:
            return None
        key = self._shape_key(request.query, request.pivot, request.strategy)
        with self._lock:
            memoized = self._memo.get(key)  # LruMap counts the hit/miss
            if memoized is not None:
                return memoized
        decomposition = self.engine.decompose(
            request.query, pivot=request.pivot, strategy=request.strategy
        )
        with self._lock:
            self._memo.put(key, decomposition)
        return decomposition

    def execute(self, request, submitted_wall: float) -> QueryResult:
        if self._faults is not None:
            # Before any real work, so an injected crash models a worker
            # dying mid-request (the request is lost, not half-served).
            self._faults.on_request()
        decomposition = self.decomposition_for(request)
        result = execute_request(
            self.engine, request, submitted_wall, decomposition=decomposition
        )
        with self._lock:
            self._queries += 1
        return result

    @property
    def memo_hits(self) -> int:
        with self._lock:
            return self._memo.hits

    @property
    def memo_misses(self) -> int:
        with self._lock:
            return self._memo.misses

    def snapshot(self, worker_id: str = "shared") -> WorkerSnapshot:
        cache = self.engine.weight_cache
        cache_stats = (
            cache.stats if isinstance(cache, SemanticGraphCache) else CacheStats()
        )
        with self._lock:
            memo_hits, memo_misses = self._memo.hits, self._memo.misses
            queries = self._queries
        return WorkerSnapshot(
            worker_id=worker_id,
            queries=queries,
            cache=cache_stats,
            space=self.engine.space.stats(),
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            max_rss_kb=_max_rss_kb(),
        )


class ExecutionBackend:
    """The contract a :class:`~repro.serve.service.QueryService` runs on.

    ``submit`` takes a request plus its wall-clock submission instant and
    returns a future resolving to a :class:`QueryResult`; ``snapshots``
    reports per-worker statistics; ``warmup`` makes the first real
    request pay no construction latency; ``close`` releases resources
    (called exactly once by the owning service).

    ``on_complete(success)`` — when given — is invoked on the execution
    path strictly *before* the returned future resolves, so a caller that
    just observed ``future.result()`` is guaranteed to see the service's
    completion counters already updated (a plain done-callback races with
    the waiter).
    """

    name: str = "abstract"
    #: How ``snapshots`` rows relate to the truth: ``"shared"`` rows read
    #: live shared structures; ``"per-worker"`` rows are summed copies.
    stats_scope: str = "shared"

    def submit(self, request, submitted_wall: float) -> "Future[QueryResult]":
        raise NotImplementedError

    def snapshots(self) -> List[WorkerSnapshot]:
        raise NotImplementedError

    def warmup(self, timeout: Optional[float] = None) -> int:
        """Ensure workers are ready; returns the number warmed."""
        return 0

    def close(self, wait: bool = True) -> None:
        raise NotImplementedError


def _notify(on_complete: Optional[Callable[[bool], None]], success: bool) -> None:
    if on_complete is not None:
        on_complete(success)


class InlineBackend(ExecutionBackend):
    """Synchronous execution on the caller's thread.

    The reference backend: zero scheduling, zero queueing, results by
    construction identical to calling ``engine.search`` in a loop.
    """

    name = "inline"
    stats_scope = "shared"

    def __init__(
        self,
        runner: _EngineRunner,
        on_complete: Optional[Callable[[bool], None]] = None,
    ):
        self._runner = runner
        self._on_complete = on_complete

    def submit(self, request, submitted_wall: float) -> "Future[QueryResult]":
        future: "Future[QueryResult]" = Future()
        future.set_running_or_notify_cancel()
        try:
            result = self._runner.execute(request, submitted_wall)
        except BaseException as exc:  # mirror executor behaviour
            _notify(self._on_complete, False)
            future.set_exception(exc)
        else:
            _notify(self._on_complete, True)
            future.set_result(result)
        return future

    def snapshots(self) -> List[WorkerSnapshot]:
        return [self._runner.snapshot()]

    def warmup(self, timeout: Optional[float] = None) -> int:
        return 1

    def close(self, wait: bool = True) -> None:
        pass


class ThreadBackend(ExecutionBackend):
    """The historical worker pool: shared engine, shared cache, GIL-bound."""

    name = "thread"
    stats_scope = "shared"

    def __init__(
        self,
        runner: _EngineRunner,
        workers: int,
        on_complete: Optional[Callable[[bool], None]] = None,
    ):
        if workers < 1:
            raise ServeError(f"workers must be at least 1, got {workers}")
        self._runner = runner
        self._on_complete = on_complete
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )

    def _run(self, request, submitted_wall: float) -> QueryResult:
        try:
            result = self._runner.execute(request, submitted_wall)
        except BaseException:
            _notify(self._on_complete, False)
            raise
        _notify(self._on_complete, True)
        return result

    def submit(self, request, submitted_wall: float) -> "Future[QueryResult]":
        return self._executor.submit(self._run, request, submitted_wall)

    def snapshots(self) -> List[WorkerSnapshot]:
        return [self._runner.snapshot()]

    def warmup(self, timeout: Optional[float] = None) -> int:
        return self.workers

    def close(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)


# ----------------------------------------------------------------------
# process backend: worker-side bootstrap
# ----------------------------------------------------------------------

# The per-worker engine, built exactly once by the pool initializer.  A
# module-level global is the documented ProcessPoolExecutor idiom for
# worker-lifetime state: the initializer runs before any task, and every
# task the worker executes sees the same runner.
_WORKER_RUNNER: Optional[_EngineRunner] = None


def _process_worker_init(
    spec_pickle: bytes, memoize_decompositions: bool, max_memoized: int
) -> None:
    """Pool initializer: unpickle the spec, build the engine, attach caches.

    The spec arrives pre-pickled (not as a live initarg) so the engine
    description crosses the boundary through one explicit, testable
    ``pickle.loads`` on *every* start method — fork included, where raw
    initargs would be silently inherited by memory instead.
    """
    global _WORKER_RUNNER
    spec: EngineSpec = pickle.loads(spec_pickle)
    faults = None
    plan = getattr(spec, "fault_plan", None)
    if plan is not None:
        # allow_kill: in a real worker process an injected crash is a
        # real SIGKILL — the pool must observe an actual worker death,
        # not a polite exception.
        faults = plan.activate(allow_kill=True)
        faults.on_worker_init()  # may raise (simulated shm-attach loss)
    engine = build_engine(spec, weight_cache=SemanticGraphCache())
    _WORKER_RUNNER = _EngineRunner(
        engine,
        memoize_decompositions=memoize_decompositions,
        max_memoized=max_memoized,
        faults=faults,
    )


def _process_execute(
    request, submitted_wall: float
) -> Tuple[QueryResultPayload, WorkerSnapshot]:
    """Task body: run one request, return its payload + a stats snapshot.

    Piggybacking the snapshot on every result keeps the parent's view of
    per-worker statistics fresh without control messages; a snapshot is a
    few dozen integers, noise next to the payload it rides on.
    """
    runner = _WORKER_RUNNER
    if runner is None:  # pragma: no cover - initializer contract
        raise ServeError("process worker executed before initialization")
    result = runner.execute(request, submitted_wall)
    payload = QueryResultPayload.from_result(result)
    return payload, runner.snapshot(worker_id=str(os.getpid()))


def _process_warmup(hold_seconds: float) -> str:
    """Warm-up task: the initializer already built the engine; report pid.

    ``hold_seconds`` keeps the worker briefly busy so concurrently
    submitted warm-up tasks fan out across distinct workers instead of
    being drained by the first one to come up.
    """
    time.sleep(hold_seconds)
    return str(os.getpid())


class ProcessBackend(ExecutionBackend):
    """True-parallel serving over a ``ProcessPoolExecutor``.

    Each worker bootstraps a private engine once from the pickled
    :class:`~repro.core.engine.EngineSpec` (initializer + per-worker
    global) and reuses it — with its own weight cache, space row cache
    and decomposition memo — across all requests it serves.  Request and
    response objects cross the pool as pickles; the parent re-inflates
    each :class:`QueryResultPayload` into a :class:`QueryResult` so
    callers see one result type on every backend.

    Args:
        spec: the engine description to ship.
        workers: pool size.
        memoize_decompositions / max_memoized: per-worker memo settings.
        start_method: multiprocessing start method (``None`` = platform
            default: ``fork`` on Linux — fast, shares the parent's page
            cache; ``spawn`` re-imports everything and exercises the full
            pickle path, at ~seconds of startup per worker).
    """

    name = "process"
    stats_scope = "per-worker"

    def __init__(
        self,
        spec: EngineSpec,
        workers: int,
        *,
        memoize_decompositions: bool = True,
        max_memoized: int = 1024,
        start_method: Optional[str] = None,
        on_complete: Optional[Callable[[bool], None]] = None,
    ):
        self._on_complete = on_complete
        if workers < 1:
            raise ServeError(f"workers must be at least 1, got {workers}")
        self.workers = workers
        self.spec = spec
        # Pickle eagerly: an unpicklable spec must fail in the parent with
        # a clear error, not inside a worker's initializer where the pool
        # just reports BrokenProcessPool.
        try:
            spec_pickle = pickle.dumps(spec)
        except Exception as exc:
            raise ServeError(
                f"EngineSpec is not picklable ({exc}); the process backend "
                "needs a picklable engine description"
            ) from exc
        context = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else multiprocessing.get_context()
        )
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_process_worker_init,
            initargs=(spec_pickle, memoize_decompositions, max_memoized),
        )
        self._lock = threading.Lock()
        self._snapshots: Dict[str, WorkerSnapshot] = {}

    def submit(self, request, submitted_wall: float) -> "Future[QueryResult]":
        inner = self._executor.submit(_process_execute, request, submitted_wall)
        outer: "Future[QueryResult]" = Future()

        def _relay(done: "Future[Tuple[QueryResultPayload, WorkerSnapshot]]"):
            exc = done.exception()
            payload = None
            if exc is None:
                # Record the worker snapshot even if the caller cancelled
                # the outer future: the work happened and the stats are
                # real either way.
                payload, snapshot = done.result()
                with self._lock:
                    self._snapshots[snapshot.worker_id] = snapshot
            if not outer.set_running_or_notify_cancel():
                # Caller cancelled: the result is dropped, so the request
                # completes as a failure for accounting purposes.
                _notify(self._on_complete, False)
                return
            if exc is not None:
                _notify(self._on_complete, False)
                outer.set_exception(exc)
                return
            _notify(self._on_complete, True)
            outer.set_result(payload.to_result())

        inner.add_done_callback(_relay)
        return outer

    def snapshots(self) -> List[WorkerSnapshot]:
        """Latest per-worker rows (from completed requests).

        In-flight requests are not reflected until they finish; counters
        within one row are internally consistent (taken atomically by the
        worker after a request).
        """
        with self._lock:
            return list(self._snapshots.values())

    def warmup(self, timeout: Optional[float] = None) -> int:
        """Spin up (up to) all workers and their engines before traffic.

        Submits one briefly-held task per worker so the pool spawns its
        full complement; each worker's initializer builds the engine.
        ``timeout`` bounds the *total* wait.  Returns the number of
        *distinct* workers that answered in time — on a loaded machine
        that may be fewer than ``workers``; stragglers finish
        bootstrapping on their first real request.  A timeout that
        expires before *any* worker answered, or a pool that breaks
        while warming, raises a :class:`~repro.errors.ServeError` naming
        the backend — never a bare futures ``TimeoutError``.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        try:
            futures = [
                self._executor.submit(_process_warmup, 0.05)
                for _ in range(self.workers)
            ]
        except BrokenExecutor as exc:
            raise ServeError(
                f"{self.name!r} backend failed to warm up: the worker pool "
                f"is broken ({exc})"
            ) from exc
        pids = set()
        for future in futures:
            remaining = None
            if deadline is not None:
                remaining = max(deadline - time.monotonic(), 0.0)
            try:
                pids.add(future.result(timeout=remaining))
            except FuturesTimeoutError as exc:
                # (On 3.9/3.10 the futures TimeoutError is not the
                # builtin.)  Partial warmth is fine — stragglers boot on
                # their first request — but zero workers inside the
                # caller's budget deserves a clear, typed error.
                if not pids:
                    raise ServeError(
                        f"{self.name!r} backend warmup timed out after "
                        f"{timeout:g}s with no worker ready "
                        f"(workers={self.workers}); raise the timeout or "
                        "let workers boot lazily with warmup(timeout=None)"
                    ) from exc
                break
            except BrokenExecutor as exc:
                raise ServeError(
                    f"{self.name!r} backend failed to warm up: the worker "
                    f"pool broke while booting ({exc})"
                ) from exc
        return len(pids)

    def close(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)


def aggregate_snapshots(
    snapshots: List[WorkerSnapshot],
) -> Optional[WorkerSnapshot]:
    """Sum per-worker rows into one aggregate row (``None`` when empty).

    Counters add; the ``entries``/``capacity`` gauges add too (they
    answer "how much memory do the pool's caches hold overall").
    """
    if not snapshots:
        return None
    total = snapshots[0]
    for row in snapshots[1:]:
        cache = CacheStats(
            **{
                name: getattr(total.cache, name) + getattr(row.cache, name)
                for name in CacheStats.__dataclass_fields__
            }
        )
        space = SpaceCacheStats(
            **{
                name: getattr(total.space, name) + getattr(row.space, name)
                for name in SpaceCacheStats.__dataclass_fields__
            }
        )
        total = WorkerSnapshot(
            worker_id="sum",
            queries=total.queries + row.queries,
            cache=cache,
            space=space,
            memo_hits=total.memo_hits + row.memo_hits,
            memo_misses=total.memo_misses + row.memo_misses,
            # Summed like the cache gauges: "how much memory does the
            # pool hold overall" is the question the aggregate answers.
            max_rss_kb=total.max_rss_kb + row.max_rss_kb,
        )
    if len(snapshots) == 1:
        total = replace(total, worker_id=snapshots[0].worker_id)
    return total


def diff_snapshots(
    current: Optional[WorkerSnapshot], baseline: Optional[WorkerSnapshot]
) -> Optional[WorkerSnapshot]:
    """``current - baseline`` on every counter (entry gauges kept as-is).

    The backend-neutral way to report per-phase statistics: take an
    aggregate before the phase, another after, and diff.  Gauges
    (``*_entries``, ``capacity``) describe *now* and are not subtracted.
    """
    if current is None:
        return None
    if baseline is None:
        return current
    gauges = ("weight_entries", "adjacency_entries", "row_entries")
    cache = CacheStats(
        **{
            name: getattr(current.cache, name)
            - (0 if name in gauges else getattr(baseline.cache, name))
            for name in CacheStats.__dataclass_fields__
        }
    )
    space_gauges = ("entries", "capacity")
    space = SpaceCacheStats(
        **{
            name: getattr(current.space, name)
            - (0 if name in space_gauges else getattr(baseline.space, name))
            for name in SpaceCacheStats.__dataclass_fields__
        }
    )
    return WorkerSnapshot(
        worker_id=current.worker_id,
        queries=current.queries - baseline.queries,
        cache=cache,
        space=space,
        memo_hits=current.memo_hits - baseline.memo_hits,
        memo_misses=current.memo_misses - baseline.memo_misses,
        max_rss_kb=current.max_rss_kb,  # gauge: describes now
    )
