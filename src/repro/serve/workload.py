"""Workload replay driver: arrival processes + latency reporting.

Replays a query mix against a :class:`~repro.serve.service.QueryService`
the way a load generator would hit a deployed system:

- **open loop** — arrivals are scheduled regardless of completions, so
  queueing delay shows up in the latencies exactly as a user would feel
  it.  Two arrival processes: ``uniform`` (fixed ``1/rate`` spacing, the
  deterministic replay) and ``poisson`` (seeded exponential inter-arrival
  gaps at mean rate ``rate`` — the memoryless process real traffic
  approximates, which exercises burst behaviour a uniform replay never
  shows); ``rate=None`` submits the whole workload at once (a pure
  throughput probe);
- **mixed SGQ/TBQ traffic** — :func:`mix_deadlines` stamps a seeded
  fraction of the items with a TBQ deadline, so a replay can model the
  realistic blend of exact and time-bounded requests instead of
  all-or-nothing;
- per-query **latency** is measured from scheduled submission to future
  completion and summarised as nearest-rank percentiles
  (:func:`repro.utils.stats.percentile`), and additionally bucketed by
  the workload's **complexity class** (simple / medium / complex, Table
  VI) when items carry one — a replay report then shows which class the
  tail belongs to;
- the report carries a labelled
  :class:`~repro.serve.service.ServingStatsReport` — *shared* cache
  counters on the inline/thread backends, *summed per-worker* counters on
  the process backend (each worker warms its own caches, so pool-wide
  misses scale with the worker count by design; the label keeps the two
  from being read as the same thing);
- ``breakdown=True`` (CLI: ``--breakdown``) additionally collects each
  query's **search-vs-assembly time split** plus its A*-side counters
  (expansions, τ/visited prunes, peak queue size) from the engine's
  ``QueryResult`` instrumentation, so assembly-bound queries (the D12
  class) can be told apart from search-bound ones; TA round-cap
  truncations are counted on every run.

The module doubles as the ``repro-serve-workload`` console entrypoint
(see ``setup.py``): build a preset dataset bundle, replay its workload for
N passes, and print one report per pass — pass 1 is the cold run, later
passes show the cache steady state.  ``--backend {inline,thread,process}
--workers N`` picks the execution backend.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.assembly import ASSEMBLY_KERNELS
from repro.core.astar import SEARCH_KERNELS
from repro.errors import OverloadError, ScenarioError, ServeError
from repro.kg.sharded import SHARD_STRATEGIES
from repro.query.model import QueryGraph
from repro.serve.backends import EXECUTION_BACKENDS
from repro.serve.cache import CacheStats
from repro.serve.faults import FaultPlan
from repro.serve.resilience import BackoffPolicy
from repro.serve.service import QueryRequest, QueryService, ServingStatsReport
from repro.utils.rng import derive_rng
from repro.utils.stats import percentile
from repro.utils.timing import Stopwatch

ARRIVAL_PROCESSES = ("uniform", "poisson")


@dataclass(frozen=True)
class WorkloadItem:
    """One replayable query with its serving parameters.

    ``complexity`` is the query's Table VI class (``"simple"`` /
    ``"medium"`` / ``"complex"``); when set, the replay report buckets
    latency percentiles by it.  Empty means unclassified.
    """

    query: QueryGraph
    k: int = 10
    deadline: Optional[float] = None
    qid: str = ""
    complexity: str = ""

    def to_request(self) -> QueryRequest:
        return QueryRequest(
            query=self.query, k=self.k, deadline=self.deadline, tag=self.qid
        )


@dataclass(frozen=True)
class QueryBreakdown:
    """One query's search-vs-assembly split plus A*-side counters."""

    qid: str
    elapsed_seconds: float
    search_seconds: float
    assembly_seconds: float
    ta_rounds: int
    truncated: bool
    expansions: int = 0
    pruned_by_tau: int = 0
    pruned_by_visited: int = 0
    stale_pops: int = 0
    max_queue_size: int = 0

    @property
    def assembly_share(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.assembly_seconds / self.elapsed_seconds


@dataclass
class ReplayReport:
    """Throughput and latency summary of one replay pass.

    ``class_latencies`` buckets the per-query latencies by the workload
    items' complexity class (sorted ascending per bucket); empty when no
    item carried a class.  ``arrival`` names the arrival process
    (``"uniform"`` / ``"poisson"``; meaningless when ``rate`` is
    ``None``), ``deadline_requests`` counts the TBQ share of the mix,
    and ``stats`` is the backend-labelled cache/memo report —
    ``cache_stats`` keeps the bare weight-cache counters for older
    consumers.

    ``resilience`` carries the supervision counters *this pass* caused
    (deltas of the service's monotonic totals): retries, pool_rebuilds,
    shed, crashes, timeouts, fallbacks.  All zero on an unsupervised or
    fault-free run; shed requests are also in ``failed``.

    ``answers`` carries the answer-cache counters this pass caused, the
    same delta way: answer_hits, answer_misses, singleflight_collapsed,
    answer_evictions, answer_invalidations.  All zero without an
    answer cache.
    """

    completed: int
    failed: int
    elapsed_seconds: float
    latencies: List[float]
    rate: Optional[float]
    cache_stats: Optional[CacheStats] = None
    truncated: int = 0
    breakdown: Optional[List[QueryBreakdown]] = None
    class_latencies: Dict[str, List[float]] = field(default_factory=dict)
    arrival: str = "uniform"
    deadline_requests: int = 0
    stats: Optional[ServingStatsReport] = None
    resilience: Dict[str, int] = field(default_factory=dict)
    answers: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_qps(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.completed / self.elapsed_seconds

    def latency_percentile(self, q: float) -> float:
        return percentile(self.latencies, q)

    @property
    def p50(self) -> float:
        return self.latency_percentile(50)

    @property
    def p90(self) -> float:
        return self.latency_percentile(90)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99)

    def describe(self) -> str:
        pacing = (
            f"{self.rate:.1f} qps {self.arrival} open-loop"
            if self.rate
            else "unpaced"
        )
        lines = [
            f"replay: {self.completed} completed, {self.failed} failed "
            f"in {self.elapsed_seconds * 1000:.1f} ms ({pacing})",
            f"throughput: {self.throughput_qps:.1f} qps",
        ]
        if self.deadline_requests:
            total = self.completed + self.failed
            lines.append(
                f"mix: {total - self.deadline_requests} sgq + "
                f"{self.deadline_requests} tbq requests"
            )
        if self.latencies:
            lines.append(
                "latency ms: "
                f"p50={self.p50 * 1000:.2f} "
                f"p90={self.p90 * 1000:.2f} "
                f"p99={self.p99 * 1000:.2f} "
                f"max={max(self.latencies) * 1000:.2f}"
            )
        if self.class_latencies:
            lines.append("latency by complexity class:")
            # Canonical order first, anything else alphabetically after.
            canon = ("simple", "medium", "complex")
            ordered_classes = [c for c in canon if c in self.class_latencies]
            ordered_classes += sorted(set(self.class_latencies) - set(canon))
            for cls in ordered_classes:
                values = self.class_latencies[cls]
                lines.append(
                    f"  {cls} (n={len(values)}): "
                    f"p50={percentile(values, 50) * 1000:.2f} "
                    f"p90={percentile(values, 90) * 1000:.2f} "
                    f"p99={percentile(values, 99) * 1000:.2f} ms"
                )
        if self.stats is not None:
            # Label the aggregation scope: a shared cache's hit rate and a
            # per-worker sum are different quantities (see ServingStatsReport).
            lines.append(
                f"weight cache ({self.stats.scope_label()}): "
                f"{self.stats.cache.describe()}"
            )
        elif self.cache_stats is not None:
            lines.append(f"weight cache: {self.cache_stats.describe()}")
        if self.truncated:
            lines.append(
                f"ta: {self.truncated} queries hit the assembly round cap"
            )
        if self.answers and any(self.answers.values()):
            a = self.answers
            served = a.get("answer_hits", 0) + a.get("singleflight_collapsed", 0)
            lookups = served + a.get("answer_misses", 0)
            rate = served / lookups if lookups else 0.0
            lines.append(
                f"answer cache (shared): {a.get('answer_hits', 0)} hits, "
                f"{a.get('answer_misses', 0)} misses, "
                f"{a.get('singleflight_collapsed', 0)} collapsed "
                f"(hit_rate={rate:.3f}; "
                f"{a.get('answer_evictions', 0)} evictions, "
                f"{a.get('answer_invalidations', 0)} invalidations)"
            )
        if self.resilience and any(self.resilience.values()):
            r = self.resilience
            lines.append(
                f"resilience: {r.get('retries', 0)} retries, "
                f"{r.get('pool_rebuilds', 0)} pool rebuilds, "
                f"{r.get('crashes', 0)} crashes, {r.get('shed', 0)} shed, "
                f"{r.get('timeouts', 0)} timeouts, "
                f"{r.get('fallbacks', 0)} fallback queries"
            )
        if self.breakdown:
            total = sum(b.elapsed_seconds for b in self.breakdown)
            assembly = sum(b.assembly_seconds for b in self.breakdown)
            share = assembly / total if total > 0 else 0.0
            expansions = sum(b.expansions for b in self.breakdown)
            pruned = sum(
                b.pruned_by_tau + b.pruned_by_visited for b in self.breakdown
            )
            stale = sum(b.stale_pops for b in self.breakdown)
            lines.append(
                f"assembly share: {share * 100.0:.1f}% of "
                f"{total * 1000:.1f} ms total query time"
            )
            lines.append(
                f"search totals: {expansions} expansions, {pruned} pruned, "
                f"{stale} stale pops"
            )
            if self.stats is not None:
                lines.append(
                    f"serving stats [{self.stats.backend} backend, "
                    f"{self.stats.scope_label()}]: decomposition memo "
                    f"hits={self.stats.memo_hits} "
                    f"misses={self.stats.memo_misses}; "
                    f"space {self.stats.space.describe()}"
                )
            lines.append("search vs assembly per query (slowest assembly first):")
            ordered = sorted(self.breakdown, key=lambda b: -b.assembly_seconds)
            for row in ordered:
                flag = " TRUNCATED" if row.truncated else ""
                lines.append(
                    f"  {row.qid or '?'}: total {row.elapsed_seconds * 1000:.1f} ms"
                    f" = search {row.search_seconds * 1000:.1f}"
                    f" + assembly {row.assembly_seconds * 1000:.1f}"
                    f" ({row.assembly_share * 100.0:.1f}% assembly,"
                    f" {row.ta_rounds} rounds; {row.expansions} exp,"
                    f" {row.pruned_by_tau}+{row.pruned_by_visited} pruned,"
                    f" q<={row.max_queue_size}){flag}"
                )
        return "\n".join(lines)


def mix_deadlines(
    items: Sequence[WorkloadItem],
    fraction: float,
    deadline: float,
    *,
    seed: int = 0,
) -> List[WorkloadItem]:
    """Stamp a seeded ``fraction`` of the items with a TBQ ``deadline``.

    Models a realistic mixed workload: most traffic exact (SGQ), a slice
    latency-bounded (TBQ).  Selection is a seeded permutation, so the
    same (items, fraction, seed) triple always marks the same queries —
    replay passes stay comparable.  The remaining items keep their own
    deadlines (usually ``None``).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ServeError(f"tbq fraction must be in [0, 1], got {fraction}")
    if deadline <= 0:
        raise ServeError(f"deadline must be positive, got {deadline}")
    count = round(fraction * len(items))
    rng = derive_rng(seed, "workload:tbq-mix")
    chosen = set(rng.permutation(len(items))[:count].tolist())
    return [
        replace(item, deadline=deadline) if index in chosen else item
        for index, item in enumerate(items)
    ]


POPULARITY_KINDS = ("uniform", "zipf")


@dataclass(frozen=True)
class PopularitySpec:
    """How often each workload query repeats in a replay.

    ``uniform`` (the default) replays every item exactly once — the
    historical behaviour, so existing artifacts replay unchanged.
    ``zipf`` resamples the items under a Zipfian popularity law
    (rank ``r`` drawn with probability ∝ ``r^-s``), the shape real
    query traffic approximates — a few hot queries dominate, a long
    tail trickles.  That skew is what makes an answer cache measurable:
    a uniform replay has no hot keys to hit.

    ``s`` is the skew exponent (larger = hotter head); ``length`` the
    resampled request count (``None`` = same as the item count).
    Picklable and versioned into scenario manifests.
    """

    kind: str = "uniform"
    s: float = 1.1
    length: Optional[int] = None

    def __post_init__(self):
        if self.kind not in POPULARITY_KINDS:
            raise ServeError(
                f"unknown popularity kind {self.kind!r} "
                f"(expected one of {POPULARITY_KINDS})"
            )
        if self.kind == "zipf" and self.s <= 0:
            raise ServeError(f"zipf exponent must be positive, got {self.s}")
        if self.length is not None and self.length < 1:
            raise ServeError(
                f"popularity length must be at least 1, got {self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "PopularitySpec":
        """Parse ``"uniform"`` or ``"zipf:<s>[:<length>]"``."""
        parts = text.strip().split(":")
        kind = parts[0]
        if kind == "uniform":
            if len(parts) > 1:
                raise ServeError("uniform popularity takes no parameters")
            return cls()
        if kind != "zipf":
            raise ServeError(
                f"unknown popularity spec {text!r} "
                "(expected 'uniform' or 'zipf:<s>[:<length>]')"
            )
        if len(parts) < 2 or len(parts) > 3:
            raise ServeError(
                f"zipf popularity needs 'zipf:<s>[:<length>]', got {text!r}"
            )
        try:
            s = float(parts[1])
            length = int(parts[2]) if len(parts) == 3 else None
        except ValueError as exc:
            raise ServeError(f"bad popularity spec {text!r}: {exc}") from None
        return cls(kind="zipf", s=s, length=length)

    def manifest(self) -> Dict[str, object]:
        return {"kind": self.kind, "s": self.s, "length": self.length}

    @classmethod
    def from_manifest(cls, payload: Dict[str, object]) -> "PopularitySpec":
        return cls(
            kind=payload["kind"], s=payload["s"], length=payload["length"]
        )

    def describe(self) -> str:
        if self.kind == "uniform":
            return "uniform (each query once)"
        suffix = f", {self.length} requests" if self.length is not None else ""
        return f"zipf(s={self.s}{suffix})"


def apply_popularity(
    items: Sequence[WorkloadItem],
    spec: Optional[PopularitySpec],
    seed: int,
) -> List[WorkloadItem]:
    """Resample ``items`` under ``spec`` (seeded; identity for uniform).

    Popularity ranks are assigned to items through a seeded permutation
    — which query becomes the hot head is itself part of the draw, not
    an artifact of generation order.  The same ``(items, spec, seed)``
    triple always yields the same request sequence.
    """
    if spec is None or spec.kind == "uniform":
        return list(items)
    if not items:
        return []
    count = len(items)
    length = spec.length if spec.length is not None else count
    rng = derive_rng(seed, "workload:popularity")
    rank_to_item = rng.permutation(count)
    weights = [(rank + 1) ** -spec.s for rank in range(count)]
    total = sum(weights)
    draws = rng.choice(count, size=length, p=[w / total for w in weights])
    return [items[int(rank_to_item[int(rank)])] for rank in draws]


def _arrival_schedule(
    count: int, rate: float, arrival: str, seed: int
) -> List[float]:
    """Scheduled arrival offsets (seconds from replay start) per request."""
    if arrival == "uniform":
        return [index / rate for index in range(count)]
    # Poisson process: i.i.d. exponential gaps with mean 1/rate.  Seeded,
    # so a replay is reproducible; the schedule is fixed up front (open
    # loop — arrivals never wait for completions).
    rng = derive_rng(seed, "workload:poisson-arrivals")
    gaps = rng.exponential(scale=1.0 / rate, size=count)
    schedule: List[float] = []
    clock = 0.0
    for gap in gaps:
        clock += float(gap)
        schedule.append(clock)
    return schedule


def replay(
    service: QueryService,
    items: Sequence[Union[WorkloadItem, QueryRequest, QueryGraph]],
    *,
    rate: Optional[float] = None,
    arrival: str = "uniform",
    seed: int = 0,
    k: int = 10,
    breakdown: bool = False,
    on_result: Optional[Callable] = None,
) -> ReplayReport:
    """Replay ``items`` through ``service`` and measure the experience.

    Args:
        service: the serving front-end under load.
        items: workload items (bare :class:`QueryGraph` entries get ``k``).
        rate: open-loop arrival rate in queries/second; ``None`` submits
            everything immediately.
        arrival: arrival process — ``"uniform"`` (fixed spacing) or
            ``"poisson"`` (seeded exponential gaps at mean rate ``rate``).
        seed: RNG seed for the Poisson schedule.
        breakdown: collect each query's search-vs-assembly split into
            :attr:`ReplayReport.breakdown`.
        on_result: optional ``(index, request, result)`` callback invoked
            (serialised under the report lock) for every successful
            query — the hook scenario replays use to collect answer sets
            without the report having to carry full results.
    """
    if rate is not None and rate <= 0:
        raise ServeError(f"arrival rate must be positive, got {rate}")
    if arrival not in ARRIVAL_PROCESSES:
        raise ServeError(
            f"unknown arrival process {arrival!r} "
            f"(expected one of {ARRIVAL_PROCESSES})"
        )
    requests = []
    classes: List[str] = []
    for item in items:
        if isinstance(item, WorkloadItem):
            requests.append(item.to_request())
            classes.append(item.complexity)
        elif isinstance(item, QueryRequest):
            requests.append(item)
            classes.append("")
        else:
            requests.append(QueryRequest(query=item, k=k))
            classes.append("")

    latencies: List[float] = []
    class_latencies: Dict[str, List[float]] = {}
    failures = [0]
    truncated = [0]
    splits: List[QueryBreakdown] = []
    lock = threading.Lock()
    done = threading.Semaphore(0)
    resilience_keys = (
        "retries",
        "pool_rebuilds",
        "shed",
        "crashes",
        "timeouts",
        "fallbacks",
    )
    answer_keys = (
        "answer_hits",
        "answer_misses",
        "singleflight_collapsed",
        "answer_evictions",
        "answer_invalidations",
    )
    stats_before = service.stats_snapshot()
    watch = Stopwatch()

    def _submit(request: QueryRequest, scheduled: float, index: int) -> None:
        try:
            future = service.submit_request(request)
        except OverloadError:
            # A shed request is a failed request, not a failed replay:
            # the admission queue doing its job under overload must not
            # abort the remaining schedule.
            with lock:
                failures[0] += 1
            done.release()
            return

        def _finish(f) -> None:
            latency = watch.elapsed() - scheduled
            with lock:
                if f.exception() is None:
                    latencies.append(latency)
                    if classes[index]:
                        class_latencies.setdefault(classes[index], []).append(
                            latency
                        )
                    result = f.result()
                    if on_result is not None:
                        on_result(index, request, result)
                    if result.ta_truncated:
                        truncated[0] += 1
                    if breakdown:
                        splits.append(
                            QueryBreakdown(
                                qid=request.tag or f"q{index}",
                                elapsed_seconds=result.elapsed_seconds,
                                search_seconds=result.search_seconds,
                                assembly_seconds=result.assembly_seconds,
                                ta_rounds=result.ta_rounds,
                                truncated=result.ta_truncated,
                                expansions=result.expansions,
                                pruned_by_tau=result.pruned_by_tau,
                                pruned_by_visited=result.pruned_by_visited,
                                stale_pops=result.stale_pops,
                                max_queue_size=result.max_queue_size,
                            )
                        )
                else:
                    failures[0] += 1
            done.release()

        future.add_done_callback(_finish)

    schedule = (
        _arrival_schedule(len(requests), rate, arrival, seed)
        if rate is not None
        else None
    )
    for index, request in enumerate(requests):
        if schedule is None:
            # Unpaced: no schedule exists, so latency starts at the
            # actual submission instant.
            _submit(request, watch.elapsed(), index)
            continue
        scheduled = schedule[index]
        delay = scheduled - watch.elapsed()
        if delay > 0:
            time.sleep(delay)
        # Latency is measured from the *scheduled* arrival even when the
        # generator falls behind — hiding generator lag would be the
        # classic coordinated-omission distortion open-loop replay exists
        # to avoid.
        _submit(request, scheduled, index)

    for _ in requests:
        done.acquire()
    elapsed = watch.elapsed()

    stats = service.serving_stats()
    stats_after = service.stats_snapshot()
    resilience = {
        key: getattr(stats_after, key) - getattr(stats_before, key)
        for key in resilience_keys
    }
    answers = {
        key: getattr(stats_after, key) - getattr(stats_before, key)
        for key in answer_keys
    }
    return ReplayReport(
        completed=len(latencies),
        failed=failures[0],
        elapsed_seconds=elapsed,
        latencies=sorted(latencies),
        rate=rate,
        cache_stats=stats.cache,
        truncated=truncated[0],
        breakdown=splits if breakdown else None,
        class_latencies={
            cls: sorted(values) for cls, values in class_latencies.items()
        },
        arrival=arrival,
        deadline_requests=sum(
            1 for request in requests if request.deadline is not None
        ),
        stats=stats,
        resilience=resilience,
        answers=answers,
    )


# ----------------------------------------------------------------------
# console entrypoint
# ----------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve-workload",
        description=(
            "Replay a preset query workload through the cache-backed "
            "QueryService and report throughput/latency per pass."
        ),
    )
    parser.add_argument(
        "--preset",
        default="dbpedia",
        choices=("dbpedia", "freebase", "yago2"),
        help="dataset bundle to generate (default: dbpedia)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="PATH",
        help=(
            "replay a frozen scenario Workload artifact (see "
            "repro.scenarios) instead of a preset workload; the artifact "
            "fixes the domain, query set, k, tau, arrival spec and "
            "deadline mix, so --preset/--scale/--seed/--k are ignored and "
            "--rate/--arrival/--deadline/--tbq-fraction are rejected"
        ),
    )
    parser.add_argument("--scale", type=float, default=2.0, help="generator scale")
    parser.add_argument("--seed", type=int, default=1, help="generator seed")
    parser.add_argument("--k", type=int, default=10, help="top-k per query")
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="replay passes over the workload (pass 1 is cold)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop arrival rate in qps (default: unpaced)",
    )
    parser.add_argument(
        "--arrival",
        default="uniform",
        choices=ARRIVAL_PROCESSES,
        help=(
            "arrival process when --rate is set: 'uniform' fixed spacing "
            "or 'poisson' seeded exponential gaps (default: uniform)"
        ),
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help=(
            "per-query TBQ deadline in seconds; applies to every query, "
            "or to the --tbq-fraction slice when that is set "
            "(default: exact SGQ)"
        ),
    )
    parser.add_argument(
        "--tbq-fraction",
        type=float,
        default=None,
        help=(
            "fraction of queries (seeded selection) served time-bounded "
            "with --deadline; the rest run exact SGQ (default: all-or-"
            "nothing per --deadline)"
        ),
    )
    parser.add_argument(
        "--backend",
        default="thread",
        choices=EXECUTION_BACKENDS,
        help=(
            "execution backend: 'inline' (caller's thread), 'thread' "
            "(GIL-bound pool, shared caches) or 'process' (true multi-"
            "core parallelism; per-worker engines bootstrapped from a "
            "pickled EngineSpec).  Identical exact results on all three."
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker pool size (threads or processes; ignored by inline)",
    )
    parser.add_argument(
        "--shared-graph",
        action="store_true",
        help=(
            "process backend only (with --view compact): publish the "
            "frozen CSR graph into one shared-memory segment; workers "
            "attach zero-copy instead of unpickling graph arrays "
            "(identical results, O(metadata) worker warmup, one physical "
            "graph copy pool-wide)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "partition the frozen CSR graph into N entity-owned shards "
            "(requires --view compact): per-shard caches, rank-merged "
            "incident fan-out, and — with --shared-graph — one shm "
            "segment per shard.  Exact results are bit-identical to the "
            "unsharded store (default: 0 = unsharded)"
        ),
    )
    parser.add_argument(
        "--shard-strategy",
        default="hash",
        choices=SHARD_STRATEGIES,
        help=(
            "entity partitioner for --shards: 'hash' (seeded uniform "
            "mixing) or 'balanced-degree' (greedy degree-mass "
            "balancing).  Deterministic; identical answers either way "
            "(default: hash)"
        ),
    )
    parser.add_argument(
        "--shard-fanout",
        default="inline",
        choices=("inline", "pool"),
        help=(
            "per-shard gather schedule for --shards: 'inline' runs the "
            "shards sequentially on the calling thread, 'pool' fans out "
            "on a small thread pool.  The merge is rank-keyed, so both "
            "produce identical results (default: inline)"
        ),
    )
    parser.add_argument(
        "--view",
        default="lazy",
        choices=("lazy", "compact"),
        help=(
            "semantic-graph kernel: 'lazy' is the paper's per-query "
            "on-demand view, 'compact' the frozen CSR kernel with "
            "vectorized weights (identical results, different cost)"
        ),
    )
    parser.add_argument(
        "--assembly-kernel",
        default="vectorized",
        choices=ASSEMBLY_KERNELS,
        help=(
            "TA assembly implementation: the incremental numpy kernel "
            "(default) or the pure-Python reference assembler "
            "(identical results, different cost)"
        ),
    )
    parser.add_argument(
        "--search-kernel",
        default="auto",
        choices=SEARCH_KERNELS,
        help=(
            "A* search implementation: 'auto' runs the array-backed "
            "kernel whenever the view is compact, 'vectorized' forces it "
            "(requires --view compact), 'reference' forces the Algorithm "
            "1 transcription (identical results, different cost)"
        ),
    )
    parser.add_argument(
        "--breakdown",
        action="store_true",
        help=(
            "report each query's search-vs-assembly time split per pass "
            "(engine instrumentation; identifies assembly-bound queries)"
        ),
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault injection spec, e.g. "
            "'crash@3;transient@2,5;latency@4:0.05;seed=7;epochs=2' "
            "(see repro.serve.faults.FaultPlan.parse); implies supervised "
            "serving so the replay recovers from the injected faults"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retry budget per request for retryable failures (transient "
            "errors, worker crashes); implies supervised serving "
            "(default: 2 when supervision is on)"
        ),
    )
    parser.add_argument(
        "--hard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-request wall-clock cap enforced by the supervisor (fails "
            "the request; distinct from a TBQ --deadline, which degrades "
            "the answer); implies supervised serving"
        ),
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission-queue bound: shed submissions beyond N in-flight "
            "requests with OverloadError; implies supervised serving"
        ),
    )
    parser.add_argument(
        "--answer-cache",
        type=int,
        default=0,
        metavar="N",
        help=(
            "enable the front-side result-level answer cache with an LRU "
            "capacity of N entries: exact (SGQ) answers are memoized "
            "under a canonical query fingerprint with singleflight "
            "dedup, so repeated hot queries skip the engine (and IPC on "
            "the process backend) entirely (default: 0 = off)"
        ),
    )
    parser.add_argument(
        "--answer-cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-entry time-to-live for --answer-cache entries; expired "
            "answers recompute on next access (default: no expiry)"
        ),
    )
    parser.add_argument(
        "--popularity",
        default="uniform",
        metavar="SPEC",
        help=(
            "query repetition law: 'uniform' replays each workload query "
            "once (default, the historical behaviour), 'zipf:<s>[:<len>]' "
            "resamples the queries Zipf-skewed with exponent s (seeded), "
            "giving the replay genuine hot keys — the traffic shape that "
            "makes --answer-cache measurable.  With --scenario this "
            "resamples the artifact's fixed query sequence."
        ),
    )
    parser.add_argument(
        "--supervised",
        action="store_true",
        help=(
            "wrap the backend in the SupervisedBackend even without any "
            "other resilience flag (retries, pool rebuild on worker "
            "crash, circuit-breaker fallback)"
        ),
    )
    return parser


def _resilience_kwargs(args, parser) -> Dict[str, object]:
    """Validate the resilience flags and build QueryService.build kwargs."""
    if args.retries is not None and args.retries < 0:
        parser.error(f"--retries must be non-negative, got {args.retries}")
    if args.hard_timeout is not None and args.hard_timeout <= 0:
        parser.error(
            f"--hard-timeout must be positive, got {args.hard_timeout}"
        )
    if args.max_pending is not None and args.max_pending < 1:
        parser.error(
            f"--max-pending must be at least 1, got {args.max_pending}"
        )
    kwargs: Dict[str, object] = {}
    if args.fault_plan is not None:
        try:
            kwargs["fault_plan"] = FaultPlan.parse(args.fault_plan)
        except ServeError as exc:
            parser.error(f"--fault-plan: {exc}")
    if args.retries is not None:
        kwargs["retry_policy"] = BackoffPolicy(retries=args.retries)
    if args.hard_timeout is not None:
        kwargs["hard_timeout"] = args.hard_timeout
    if args.max_pending is not None:
        kwargs["max_pending"] = args.max_pending
    if args.supervised or kwargs:
        kwargs["supervised"] = True
    return kwargs


def _answer_cache_kwargs(args, parser) -> Dict[str, object]:
    """Validate the answer-cache flags and build QueryService.build kwargs."""
    if args.answer_cache < 0:
        parser.error(
            f"--answer-cache must be non-negative, got {args.answer_cache}"
        )
    if args.answer_cache_ttl is not None:
        if args.answer_cache == 0:
            parser.error("--answer-cache-ttl requires --answer-cache")
        if args.answer_cache_ttl <= 0:
            parser.error(
                f"--answer-cache-ttl must be positive, "
                f"got {args.answer_cache_ttl}"
            )
    kwargs: Dict[str, object] = {}
    if args.answer_cache:
        kwargs["answer_cache"] = args.answer_cache
        if args.answer_cache_ttl is not None:
            kwargs["answer_cache_ttl"] = args.answer_cache_ttl
    return kwargs


def _parse_popularity(args, parser) -> PopularitySpec:
    try:
        return PopularitySpec.parse(args.popularity)
    except ServeError as exc:
        parser.error(f"--popularity: {exc}")


def _run_scenario(args, parser) -> int:
    """Replay a frozen scenario artifact (the ``--scenario`` path)."""
    if (
        args.rate is not None
        or args.arrival != "uniform"
        or args.deadline is not None
        or args.tbq_fraction is not None
    ):
        parser.error(
            "--scenario fixes the arrival spec and deadline mix; "
            "--rate/--arrival/--deadline/--tbq-fraction cannot override it"
        )
    # Deferred import: scenario replay pulls in the generator stack.
    from repro.scenarios.replay import (
        answer_digest,
        build_resources,
        scenario_items,
    )
    from repro.scenarios.suite import Workload
    # Under ``python -m repro.serve.workload`` this file runs as
    # ``__main__`` while the scenario machinery imports the canonical
    # ``repro.serve.workload`` module — two distinct ``WorkloadItem``
    # classes.  Replay through the canonical module so its isinstance
    # checks see the class ``scenario_items`` actually constructed.
    from repro.serve.workload import replay as canonical_replay

    try:
        workload = Workload.from_pickle(args.scenario)
    except FileNotFoundError:
        parser.error(f"--scenario: no such artifact: {args.scenario}")
    except ScenarioError as exc:
        parser.error(f"--scenario: {exc}")
    resources = build_resources(workload)
    counts = workload.intent_counts()
    mix = workload.deadline_mix
    print(
        f"scenario {workload.name}: domain {workload.domain} @ scale "
        f"{workload.scale} ({resources.kg.num_entities} entities, "
        f"{resources.kg.num_edges} edges), {len(workload.queries)} queries, "
        f"k={workload.k}, tau={workload.tau} "
        f"({args.view} view, {args.backend} backend)"
    )
    print(
        "intent mix: "
        + ", ".join(f"{intent}={count}" for intent, count in counts.items())
    )
    if mix is not None and mix.fraction > 0:
        print(
            f"deadline mix: {mix.fraction:.0%} of queries time-bounded "
            f"at {mix.deadline:.2f} s (seeded selection)"
        )
    items = scenario_items(workload)
    popularity = _parse_popularity(args, parser)
    if popularity.kind != "uniform":
        # Explicit resampling on top of the artifact's fixed sequence
        # (the artifact's own popularity, if any, is already applied by
        # scenario_items) — seeded by the workload, so repeatable.
        items = apply_popularity(items, popularity, workload.seed)
        print(
            f"popularity: {popularity.describe()} — resampled to "
            f"{len(items)} requests"
        )
    kg = resources.kg
    resilience_kwargs = _resilience_kwargs(args, parser)
    answer_kwargs = _answer_cache_kwargs(args, parser)
    plan = resilience_kwargs.get("fault_plan")
    if plan is not None:
        print(f"fault plan: {plan.describe()}")
    if answer_kwargs:
        ttl = answer_kwargs.get("answer_cache_ttl")
        ttl_note = f", ttl {ttl} s" if ttl is not None else ""
        print(f"answer cache: {args.answer_cache} entries{ttl_note}")
    if args.shards:
        print(
            f"sharded store: {args.shards} shards "
            f"({args.shard_strategy} partitioner, "
            f"{args.shard_fanout} fan-out)"
        )
    with QueryService.build(
        resources.kg,
        resources.space,
        resources.library,
        resources.config,
        backend=args.backend,
        workers=args.workers,
        compact=(args.view == "compact"),
        assembly_kernel=args.assembly_kernel,
        search_kernel=args.search_kernel,
        shared_graph=args.shared_graph,
        shards=args.shards,
        shard_strategy=args.shard_strategy,
        shard_fanout=args.shard_fanout,
        **resilience_kwargs,
        **answer_kwargs,
    ) as service:
        if args.backend == "process":
            warmed = service.warmup()
            graph_note = " (shared graph)" if args.shared_graph else ""
            print(
                f"warmed {warmed}/{service.workers} process workers"
                f"{graph_note}"
            )
        for run in range(1, args.repeats + 1):
            service.reset_serving_stats()
            answers: Dict[str, List[str]] = {}

            def _collect(index, request, result) -> None:
                if request.deadline is None:
                    answers[request.tag] = sorted(
                        kg.entity(uid).name for uid in result.answer_uids()
                    )

            report = canonical_replay(
                service,
                items,
                rate=workload.arrival.rate,
                arrival=(
                    workload.arrival.process
                    if workload.arrival.rate is not None
                    else "uniform"
                ),
                seed=workload.seed,
                breakdown=args.breakdown,
                on_result=_collect,
            )
            label = "cold" if run == 1 else "warm"
            print(f"\n--- pass {run}/{args.repeats} ({label}) ---")
            print(report.describe())
            # The determinism contract: identical seeds must print an
            # identical digest on every pass, run and backend.
            print(
                f"exact-match digest: {answer_digest(answers)} "
                f"({len(answers)} exact queries)"
            )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-serve-workload`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.scale <= 0:
        parser.error(f"--scale must be positive, got {args.scale}")
    if args.k < 1:
        parser.error(f"--k must be at least 1, got {args.k}")
    if args.repeats < 1:
        parser.error(f"--repeats must be at least 1, got {args.repeats}")
    if args.rate is not None and args.rate <= 0:
        parser.error(f"--rate must be positive, got {args.rate}")
    if args.arrival == "poisson" and args.rate is None:
        parser.error("--arrival poisson requires --rate")
    if args.deadline is not None and args.deadline <= 0:
        parser.error(f"--deadline must be positive, got {args.deadline}")
    if args.tbq_fraction is not None:
        if not 0.0 <= args.tbq_fraction <= 1.0:
            parser.error(
                f"--tbq-fraction must be in [0, 1], got {args.tbq_fraction}"
            )
        if args.deadline is None and args.tbq_fraction > 0:
            parser.error("--tbq-fraction requires --deadline")
    if args.workers < 1:
        parser.error(f"--workers must be at least 1, got {args.workers}")
    if args.search_kernel == "vectorized" and args.view != "compact":
        parser.error("--search-kernel vectorized requires --view compact")
    if args.shared_graph and args.backend != "process":
        parser.error("--shared-graph requires --backend process")
    if args.shared_graph and args.view != "compact":
        parser.error("--shared-graph requires --view compact")
    if args.shards < 0:
        parser.error(f"--shards must be non-negative, got {args.shards}")
    if args.shards and args.view != "compact":
        parser.error("--shards requires --view compact")
    if args.shards and args.search_kernel == "vectorized":
        parser.error(
            "--shards feeds the rank-merged fan-out view, which only the "
            "reference search kernel consumes; drop --search-kernel "
            "vectorized (use auto)"
        )
    if args.shard_fanout != "inline" and not args.shards:
        parser.error("--shard-fanout requires --shards")
    if args.scenario is not None:
        return _run_scenario(args, parser)
    # Deferred import: bundle generation pulls in the full bench stack.
    from repro.bench.datasets import load_bundle

    bundle = load_bundle(args.preset, scale=args.scale, seed=args.seed)
    print(
        f"{args.preset}: {bundle.kg.num_entities} entities, "
        f"{bundle.kg.num_edges} edges, {len(bundle.workload)} queries "
        f"({args.view} view, {args.backend} backend)"
    )
    # With a --tbq-fraction only the seeded slice gets the deadline;
    # without one the historical all-or-nothing semantics apply.
    per_item_deadline = None if args.tbq_fraction is not None else args.deadline
    items = [
        WorkloadItem(
            query=q.query,
            k=args.k,
            deadline=per_item_deadline,
            qid=q.qid,
            complexity=q.complexity,
        )
        for q in bundle.workload
    ]
    if args.tbq_fraction:
        items = mix_deadlines(
            items, args.tbq_fraction, args.deadline, seed=args.seed
        )
    popularity = _parse_popularity(args, parser)
    if popularity.kind != "uniform":
        items = apply_popularity(items, popularity, args.seed)
        print(
            f"popularity: {popularity.describe()} — resampled to "
            f"{len(items)} requests"
        )
    resilience_kwargs = _resilience_kwargs(args, parser)
    answer_kwargs = _answer_cache_kwargs(args, parser)
    plan = resilience_kwargs.get("fault_plan")
    if plan is not None:
        print(f"fault plan: {plan.describe()}")
    if answer_kwargs:
        ttl = answer_kwargs.get("answer_cache_ttl")
        ttl_note = f", ttl {ttl} s" if ttl is not None else ""
        print(f"answer cache: {args.answer_cache} entries{ttl_note}")
    if args.shards:
        print(
            f"sharded store: {args.shards} shards "
            f"({args.shard_strategy} partitioner, "
            f"{args.shard_fanout} fan-out)"
        )
    with QueryService.build(
        bundle.kg,
        bundle.space,
        bundle.library,
        backend=args.backend,
        workers=args.workers,
        compact=(args.view == "compact"),
        assembly_kernel=args.assembly_kernel,
        search_kernel=args.search_kernel,
        shared_graph=args.shared_graph,
        shards=args.shards,
        shard_strategy=args.shard_strategy,
        shard_fanout=args.shard_fanout,
        **resilience_kwargs,
        **answer_kwargs,
    ) as service:
        if args.backend == "process":
            warmed = service.warmup()
            graph_note = " (shared graph)" if args.shared_graph else ""
            print(
                f"warmed {warmed}/{service.workers} process workers"
                f"{graph_note}"
            )
        for run in range(1, args.repeats + 1):
            service.reset_serving_stats()
            report = replay(
                service,
                items,
                rate=args.rate,
                arrival=args.arrival,
                seed=args.seed,
                breakdown=args.breakdown,
            )
            label = "cold" if run == 1 else "warm"
            print(f"\n--- pass {run}/{args.repeats} ({label}) ---")
            print(report.describe())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
