"""Serving layer: shared weight cache, batched query service, load driver.

The paper's engine (``repro.core``) answers one query at a time and
rebuilds its semantic-graph state per call.  This package amortises that
state across a workload:

- :class:`~repro.serve.cache.SemanticGraphCache` — thread-safe,
  LRU-bounded cross-query store of edge weights and ``m(u)`` adjacency
  bounds, with hit/miss statistics;
- :class:`~repro.serve.service.QueryService` — worker-pool front-end with
  ``submit`` / ``submit_batch`` / ``search_many``, decomposition
  memoization and per-query deadlines (mapped onto the TBQ coordinator);
- :mod:`repro.serve.workload` — open-loop replay driver reporting
  throughput and latency percentiles (also the ``repro-serve-workload``
  console script).

Later scaling work (sharded graph stores, async front-ends, multi-backend
views) plugs in behind these seams; see ``docs/architecture.md``.
"""

from repro.serve.cache import CacheStats, SemanticGraphCache
from repro.serve.service import QueryRequest, QueryService, ServiceStats, query_shape_key
from repro.serve.workload import ReplayReport, WorkloadItem, replay

__all__ = [
    "CacheStats",
    "SemanticGraphCache",
    "QueryRequest",
    "QueryService",
    "ServiceStats",
    "query_shape_key",
    "ReplayReport",
    "WorkloadItem",
    "replay",
]
