"""Serving layer: shared weight cache, batched query service, load driver.

The paper's engine (``repro.core``) answers one query at a time and
rebuilds its semantic-graph state per call.  This package amortises that
state across a workload:

- :class:`~repro.serve.cache.SemanticGraphCache` — thread-safe,
  LRU-bounded cross-query store of edge weights and ``m(u)`` adjacency
  bounds, with hit/miss statistics;
- :class:`~repro.serve.service.QueryService` — pool front-end with
  ``submit`` / ``submit_batch`` / ``search_many``, decomposition
  memoization and per-query deadlines (mapped onto the TBQ coordinator),
  running on a pluggable execution backend;
- :mod:`repro.serve.backends` — the execution-backend seam: ``inline``
  (caller's thread), ``thread`` (GIL-bound pool, shared caches) and
  ``process`` (true multi-core parallelism; workers bootstrap private
  engines from a pickled :class:`~repro.core.engine.EngineSpec`);
- :mod:`repro.serve.workload` — open-loop replay driver (uniform or
  Poisson arrivals, mixed SGQ/TBQ) reporting throughput and latency
  percentiles (also the ``repro-serve-workload`` console script);
- :mod:`repro.serve.resilience` + :mod:`repro.serve.faults` — the
  fault-tolerance layer: :class:`~repro.serve.resilience.SupervisedBackend`
  (retries with seeded backoff, in-place pool rebuild, circuit-breaker
  fallback, hard timeouts, load shedding) driven in tests and CI by a
  deterministic, picklable :class:`~repro.serve.faults.FaultPlan`.

Later scaling work (sharded graph stores, async front-ends) plugs in
behind these seams; see ``docs/architecture.md``.
"""

from repro.serve.backends import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    WorkerSnapshot,
)
from repro.serve.cache import CacheStats, SemanticGraphCache
from repro.serve.faults import FaultInjector, FaultPlan
from repro.serve.resilience import (
    BackoffPolicy,
    CircuitBreaker,
    ResilienceStats,
    SupervisedBackend,
)
from repro.serve.service import (
    QueryRequest,
    QueryService,
    ServiceStats,
    ServingStatsReport,
    query_shape_key,
)
from repro.serve.workload import ReplayReport, WorkloadItem, mix_deadlines, replay

__all__ = [
    "CacheStats",
    "SemanticGraphCache",
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "InlineBackend",
    "ThreadBackend",
    "ProcessBackend",
    "WorkerSnapshot",
    "FaultPlan",
    "FaultInjector",
    "BackoffPolicy",
    "CircuitBreaker",
    "ResilienceStats",
    "SupervisedBackend",
    "QueryRequest",
    "QueryService",
    "ServiceStats",
    "ServingStatsReport",
    "query_shape_key",
    "ReplayReport",
    "WorkloadItem",
    "mix_deadlines",
    "replay",
]
