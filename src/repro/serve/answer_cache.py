"""Result-level answer cache: canonical query fingerprints + singleflight.

The serving layer caches semantic-graph state (weights, ``m(u)`` bounds,
rows, decompositions) but until now never *answers*: two identical hot
queries each repaid the full A*-search + TA-assembly cost.  This module
closes that gap with three pieces:

- :func:`canonicalize` derives a picklable :class:`CanonicalQueryKey`
  from a request's *structural* form — node-order permutations and
  alias spellings of the same query collapse to one key.  Node names and
  types are canonicalised through the
  :class:`~repro.query.transform.TransformationLibrary` (``Car`` and
  ``Automobile`` share a φ-candidate set, so they may share an answer);
  node labels are erased by a positional binding (nodes sorted by
  signature, edges re-expressed over positions, ties resolved by the
  lexicographically minimal edge encoding); predicates are interned into
  a sorted id table (kept verbatim — predicate *paraphrases* go through
  the embedding space and must **not** collapse).  ``k``, the engine's
  (τ, n̂, ``min_weight``, scoring, visited-policy) configuration and the
  graph epoch all enter the key via the :class:`EngineFingerprint`
  token.
- :class:`AnswerCache` is a bounded, thread-safe LRU (+ optional TTL)
  of detached :class:`~repro.core.results.QueryResultPayload` entries
  with **singleflight** deduplication: N concurrent identical misses
  run the engine exactly once — one leader executes, N−1 followers get
  futures resolved from the leader's payload (their latency is the wait
  for the leader, never a second search).
- **Epoch invalidation**: the cache binds to an
  :class:`EngineFingerprint` the way
  :class:`~repro.serve.cache.SemanticGraphCache.bind` pins a weight
  cache — identity-compared anchors (graph, space) plus a picklable
  token — but *self-clears* on mismatch instead of raising: a rebuilt
  KG invalidates every cached answer and serving continues cold.

Scope and safety:

- Only **exact** (SGQ, ``deadline is None``) results are cached.  A
  time-bounded answer is a function of the clock by design (anytime
  semantics), so TBQ requests always bypass the cache.
- ``strategy="random"`` decomposition is seeded by *declaration order*,
  so permutation collapsing would change which pivot the replayed seed
  picks; those keys keep the literal label binding (identical requests
  still hit, permuted spellings do not).
- An explicit ``pivot`` enters the key as its canonical *position*, so
  forcing different pivots of the same shape never shares an answer.
- Cached payloads are shared by reference between hits (the same
  read-only contract process workers already rely on); a hit re-inflates
  via :meth:`~repro.core.results.QueryResultPayload.to_result` without
  copying the match objects.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.config import SearchConfig
from repro.core.results import QueryResultPayload
from repro.errors import ServeError
from repro.kg.sharded import ShardedKnowledgeGraph, ShardedViewFactory
from repro.query.model import QueryGraph
from repro.query.transform import TransformationLibrary, normalize_label

__all__ = [
    "AnswerCache",
    "AnswerCacheStats",
    "CanonicalQueryKey",
    "EngineFingerprint",
    "canonicalize",
]

#: Above this many signature-consistent node orderings the canonical
#: binding falls back to declaration order (still correct — identical
#: requests hit — just not permutation-invariant for that one query).
#: Query graphs are tiny (Table VI caps at a handful of nodes), so the
#: cap only ever triggers on adversarial all-identical-node shapes.
PERMUTATION_CAP = 5040


# ----------------------------------------------------------------------
# engine fingerprint (the cache's epoch)
# ----------------------------------------------------------------------

class EngineFingerprint:
    """What an answer is a pure function of, beyond the query itself.

    ``token`` is the picklable epoch stamp embedded into every
    :class:`CanonicalQueryKey`: graph shape (entity/edge counts + name),
    predicate-space shape and the result-relevant
    :class:`~repro.core.config.SearchConfig` knobs (τ, n̂,
    ``min_weight``, scoring mode, visited policy, expansion cap).
    ``anchors`` are strong identity references (graph, space) compared
    the way :meth:`SemanticGraphCache.bind` compares its fingerprint —
    holding them alive guarantees a recycled address can never
    impersonate the bound graph.  ``library`` is the transformation
    library used to canonicalise node aliases (``None`` = identical
    matches only, mirroring :meth:`TransformationLibrary.empty`).
    """

    __slots__ = ("token", "anchors", "library")

    def __init__(
        self,
        token: Tuple,
        *,
        anchors: Tuple = (),
        library: Optional[TransformationLibrary] = None,
    ):
        self.token = token
        self.anchors = anchors
        self.library = library

    @staticmethod
    def _config_token(config: Optional[SearchConfig]) -> Tuple:
        config = config if config is not None else SearchConfig()
        return (
            config.tau,
            config.path_bound,
            config.min_weight,
            config.scoring.value,
            config.visited_policy.value,
            config.max_expansions,
        )

    @staticmethod
    def _sharded_token(sharded) -> Tuple:
        """Graph token of a sharded store (ShardedGraph *or* its handle).

        Shard count, partitioning strategy and seed all join the token:
        answers are bit-identical across shardings by construction, but
        the partitioning is part of the engine's identity — resharding
        is an epoch change, and a cache must never silently span one.
        """
        return (
            "sharded",
            sharded.kg_name,
            sharded.num_nodes,
            sharded.num_edges,
            sharded.num_shards,
            sharded.strategy,
            sharded.seed,
        )

    @classmethod
    def from_engine(cls, engine) -> "EngineFingerprint":
        """Fingerprint a live engine (inline/thread backends)."""
        kg = engine.kg
        sharded = None
        if isinstance(kg, ShardedKnowledgeGraph):
            sharded = kg.sharded
        elif isinstance(getattr(engine, "view_factory", None), ShardedViewFactory):
            # A sharded engine built over an original-KG facade: the
            # shard set still stamps the epoch (the fan-out seam, not
            # the entity surface, is what answers flow through).
            sharded = engine.view_factory.sharded
        if sharded is not None:
            graph = cls._sharded_token(sharded)
        else:
            graph = ("kg", kg.name, kg.num_entities, kg.num_edges)
        token = (
            graph,
            ("space", len(engine.space), engine.space.dim),
            cls._config_token(engine.config),
        )
        return cls(token, anchors=(kg, engine.space), library=engine.library)

    @classmethod
    def from_spec(cls, spec) -> "EngineFingerprint":
        """Fingerprint a picklable spec (the process backend's parent side).

        The spec may carry the graph by value (``kg``), as a frozen
        kernel (``compact_graph``), as a shared-memory handle, or as a
        sharded store (by value or by multi-segment handle) — all five
        know their entity/edge counts, and the sharded forms share one
        token shape so a pool rebuild (same shards, fresh segments)
        keeps the epoch.  ``shard_fanout`` deliberately stays out of the
        token: the fan-out schedule changes wall-clock, never answers.
        """
        if getattr(spec, "sharded_graph", None) is not None:
            graph = cls._sharded_token(spec.sharded_graph)
            anchor = spec.sharded_graph
        elif getattr(spec, "sharded_handle", None) is not None:
            graph = cls._sharded_token(spec.sharded_handle)
            anchor = spec.sharded_handle
        elif spec.kg is not None:
            graph = ("kg", spec.kg.name, spec.kg.num_entities, spec.kg.num_edges)
            anchor = spec.kg
        elif spec.compact_graph is not None:
            cg = spec.compact_graph
            graph = ("compact", cg.kg_name, cg.num_nodes, cg.num_edges)
            anchor = cg
        else:
            handle = spec.graph_handle
            graph = ("handle", handle.kg_name, handle.num_nodes, handle.num_edges)
            anchor = handle
        token = (
            graph,
            ("space", len(spec.space), spec.space.dim),
            cls._config_token(spec.config),
        )
        return cls(token, anchors=(anchor, spec.space), library=spec.library)

    def matches(self, other: "EngineFingerprint") -> bool:
        """Same epoch?  Identity-or-equality, mirroring ``bind()``."""
        if self.token != other.token:
            return False
        if len(self.anchors) != len(other.anchors):
            return False
        return all(
            ours is theirs or ours == theirs
            for ours, theirs in zip(self.anchors, other.anchors)
        )


# ----------------------------------------------------------------------
# canonical query key
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CanonicalQueryKey:
    """A picklable, hashable fingerprint of one answerable request.

    ``nodes`` is the sorted multiset of canonical node signatures
    ``(is_target, has_type, canonical type, has_name, canonical name)``;
    ``predicates`` the sorted interned predicate table; ``edges`` the
    minimal encoding ``(source position, predicate id, target position)``
    under the positional binding; ``pivot_position`` the canonical
    position of an explicitly forced pivot (−1 = engine chooses);
    ``labels`` is empty except on the order-faithful fallback paths
    (``strategy="random"`` or a permutation-group blowup), where it pins
    the declaration order the engine's tie-breaking depends on.
    ``fingerprint`` is the :class:`EngineFingerprint` token — the graph
    epoch, space shape and (τ, policy, …) configuration.
    """

    fingerprint: Tuple
    nodes: Tuple
    predicates: Tuple[str, ...]
    edges: Tuple[Tuple[int, int, int], ...]
    k: int
    strategy: str
    pivot_position: int = -1
    labels: Tuple[str, ...] = ()


def _node_signature(
    node, library: Optional[TransformationLibrary]
) -> Tuple[bool, bool, str, bool, str]:
    """Alias-insensitive node signature (None-ness encoded explicitly)."""
    if library is not None:
        ctype = "" if node.etype is None else library.canonical_type(node.etype)
        cname = "" if node.name is None else library.canonical_name(node.name)
    else:
        ctype = "" if node.etype is None else normalize_label(node.etype)
        cname = "" if node.name is None else normalize_label(node.name)
    return (node.name is None, node.etype is None, ctype, node.name is None, cname)


def _canonical_binding(
    query: QueryGraph,
    pivot: Optional[str],
    library: Optional[TransformationLibrary],
) -> Tuple[Tuple, Tuple[str, ...], Tuple, int, Tuple[str, ...]]:
    """The positional node binding: (nodes, predicates, edges, pivot, labels).

    Nodes are sorted by signature; within equal-signature groups every
    consistent ordering is enumerated (bounded by
    :data:`PERMUTATION_CAP`) and the lexicographically minimal
    ``(edge encoding, pivot position)`` wins — a permutation-invariant
    canonical form for the tiny graphs queries are.  Past the cap the
    binding keeps declaration order inside groups and records the label
    sequence, trading invariance for correctness.
    """
    nodes = query.nodes()
    sigs = [_node_signature(node, library) for node in nodes]
    predicates = tuple(sorted({edge.predicate for edge in query.edges()}))
    pred_id = {predicate: i for i, predicate in enumerate(predicates)}
    index_of = {node.label: i for i, node in enumerate(nodes)}
    raw_edges = [
        (index_of[e.source], pred_id[e.predicate], index_of[e.target])
        for e in query.edges()
    ]
    pivot_index = index_of[pivot] if pivot is not None else None

    order = sorted(range(len(nodes)), key=lambda i: sigs[i])
    groups: List[List[int]] = []
    for i in order:
        if groups and sigs[groups[-1][-1]] == sigs[i]:
            groups[-1].append(i)
        else:
            groups.append([i])

    total = 1
    for group in groups:
        for size in range(2, len(group) + 1):
            total *= size
        if total > PERMUTATION_CAP:
            break
    node_tuple = tuple(sigs[i] for i in order)

    if total > PERMUTATION_CAP:
        position = {node_index: p for p, node_index in enumerate(order)}
        edges = tuple(sorted((position[s], p, position[t]) for s, p, t in raw_edges))
        pivot_pos = position[pivot_index] if pivot_index is not None else -1
        return node_tuple, predicates, edges, pivot_pos, tuple(n.label for n in nodes)

    best: Optional[Tuple[Tuple, int]] = None
    for arrangement in itertools.product(
        *(itertools.permutations(group) for group in groups)
    ):
        position = {}
        p = 0
        for group in arrangement:
            for node_index in group:
                position[node_index] = p
                p += 1
        encoding = tuple(
            sorted((position[s], p_, position[t]) for s, p_, t in raw_edges)
        )
        pivot_pos = position[pivot_index] if pivot_index is not None else -1
        candidate = (encoding, pivot_pos)
        if best is None or candidate < best:
            best = candidate
    assert best is not None
    return node_tuple, predicates, best[0], best[1], ()


def canonicalize(request, engine_fingerprint: EngineFingerprint) -> CanonicalQueryKey:
    """The canonical answer-cache key for one exact request.

    Pure function of ``(request, engine_fingerprint)`` — usable from any
    backend, any process.  Raises :class:`~repro.errors.ServeError` on a
    time-bounded request: TBQ answers are clock-dependent and must never
    be cached.
    """
    if request.deadline is not None:
        raise ServeError(
            "time-bounded (TBQ) requests are never answer-cached — a "
            "deadline-bounded result is a function of the clock"
        )
    nodes, predicates, edges, pivot_pos, labels = _canonical_binding(
        request.query, request.pivot, engine_fingerprint.library
    )
    if request.strategy == "random":
        # The random pivot draw consumes declaration order; collapsing
        # permutations would replay the seed against a different order.
        labels = tuple(n.label for n in request.query.nodes())
    return CanonicalQueryKey(
        fingerprint=engine_fingerprint.token,
        nodes=nodes,
        predicates=predicates,
        edges=edges,
        k=request.k,
        strategy=request.strategy,
        pivot_position=pivot_pos,
        labels=labels,
    )


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------

@dataclass
class AnswerCacheStats:
    """A point-in-time snapshot of answer-cache effectiveness."""

    hits: int = 0
    misses: int = 0
    singleflight_collapsed: int = 0
    evictions: int = 0
    invalidations: int = 0
    expirations: int = 0
    entries: int = 0
    in_flight: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.singleflight_collapsed

    @property
    def hit_rate(self) -> float:
        """Served-without-search fraction (hits + collapsed followers)."""
        lookups = self.lookups
        served = self.hits + self.singleflight_collapsed
        return served / lookups if lookups else 0.0

    def describe(self) -> str:
        return (
            f"hit_rate={self.hit_rate:.3f} "
            f"(hits={self.hits}, misses={self.misses}, "
            f"collapsed={self.singleflight_collapsed}, "
            f"evictions={self.evictions}, "
            f"invalidations={self.invalidations}, entries={self.entries})"
        )


class _Flight:
    """One in-flight computation of a key (singleflight leader state)."""

    __slots__ = ("key", "followers")

    def __init__(self, key: CanonicalQueryKey):
        self.key = key
        self.followers: List[Future] = []


class AnswerCache:
    """Bounded, thread-safe LRU (+ optional TTL) of detached answers.

    Stores :class:`~repro.core.results.QueryResultPayload` values keyed
    by :class:`CanonicalQueryKey`.  One instance is safely shared by
    every request thread of a service — and, being front-of-process,
    by a process backend whose cached hits then skip IPC entirely.

    Args:
        capacity: LRU bound on cached answers (each entry is one top-k
            payload, small; the bound is a memory ceiling, not a
            correctness knob — a miss recomputes).
        ttl_seconds: optional time-to-live; expired entries count as
            misses and are dropped on access.  ``None`` = no expiry.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ServeError(
                f"answer cache capacity must be at least 1, got {capacity}"
            )
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ServeError(
                f"answer cache ttl must be positive, got {ttl_seconds}"
            )
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (payload, expiry deadline or None)
        self._entries: "OrderedDict[CanonicalQueryKey, Tuple[QueryResultPayload, Optional[float]]]" = (
            OrderedDict()
        )
        self._flights: dict = {}
        self._fingerprint: Optional[EngineFingerprint] = None
        self._hits = 0
        self._misses = 0
        self._collapsed = 0
        self._evictions = 0
        self._invalidations = 0
        self._expirations = 0

    # -- epoch binding --------------------------------------------------
    def bind(self, fingerprint: EngineFingerprint) -> None:
        """Pin the cache to one engine epoch; **self-clear** on change.

        Mirrors :meth:`SemanticGraphCache.bind` (identity-compared
        anchors + token) with the opposite failure mode: where the
        weight cache raises — serving weights across graphs would be
        silent corruption — the answer cache just drops every entry and
        rebinds, because a cold answer cache is merely slow.  This is
        what keeps a rebuilt/regrown KG correct: the new service's bind
        invalidates every answer computed against the old epoch.
        """
        with self._lock:
            if self._fingerprint is None:
                self._fingerprint = fingerprint
                return
            if self._fingerprint.matches(fingerprint):
                # Prefer the newest anchors (keeps the live objects of
                # the binding service alive, not a dead predecessor's).
                self._fingerprint = fingerprint
                return
            self._entries.clear()
            self._invalidations += 1
            self._fingerprint = fingerprint

    @property
    def fingerprint(self) -> Optional[EngineFingerprint]:
        with self._lock:
            return self._fingerprint

    # -- singleflight protocol -----------------------------------------
    def acquire(self, key: CanonicalQueryKey):
        """Classify one lookup atomically.

        Returns one of::

            ("hit", payload)    # cached answer, serve immediately
            ("follow", future)  # identical key in flight; the future
                                # resolves when the leader completes
            ("lead", flight)    # caller must execute and then call
                                # complete(flight, ...) exactly once

        The classification, the follower registration and the counter
        update happen under one lock, so a flight can never complete
        between a caller being told to follow and its future being
        registered.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                payload, expires = entry
                if expires is not None and self._clock() >= expires:
                    del self._entries[key]
                    self._expirations += 1
                else:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return "hit", payload
            flight = self._flights.get(key)
            if flight is not None:
                future: Future = Future()
                flight.followers.append(future)
                self._collapsed += 1
                return "follow", future
            flight = _Flight(key)
            self._flights[key] = flight
            self._misses += 1
            return "lead", flight

    def complete(
        self,
        flight: _Flight,
        payload: Optional[QueryResultPayload] = None,
        error: Optional[BaseException] = None,
    ) -> Tuple[List[Future], Optional[QueryResultPayload], Optional[BaseException]]:
        """Settle a flight: store the payload, detach the followers.

        Returns ``(followers, payload, error)``; the caller resolves the
        follower futures *outside* the cache lock (resolution runs
        arbitrary ``add_done_callback`` code).  On ``error`` nothing is
        cached — the next identical request leads a fresh flight.
        """
        with self._lock:
            self._flights.pop(flight.key, None)
            if error is None and payload is not None:
                expires = (
                    self._clock() + self.ttl_seconds
                    if self.ttl_seconds is not None
                    else None
                )
                self._entries[flight.key] = (payload, expires)
                self._entries.move_to_end(flight.key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions += 1
            followers = list(flight.followers)
            flight.followers = []
        return followers, payload, error

    # -- plain map access (tests, warm priming) ------------------------
    def lookup(self, key: CanonicalQueryKey) -> Optional[QueryResultPayload]:
        """Counter-free peek (does not classify as hit or miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            payload, expires = entry
            if expires is not None and self._clock() >= expires:
                del self._entries[key]
                self._expirations += 1
                return None
            self._entries.move_to_end(key)
            return payload

    def store(self, key: CanonicalQueryKey, payload: QueryResultPayload) -> None:
        """Insert one answer outside the singleflight protocol."""
        with self._lock:
            expires = (
                self._clock() + self.ttl_seconds
                if self.ttl_seconds is not None
                else None
            )
            self._entries[key] = (payload, expires)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    # -- introspection / maintenance -----------------------------------
    def stats(self) -> AnswerCacheStats:
        with self._lock:
            return AnswerCacheStats(
                hits=self._hits,
                misses=self._misses,
                singleflight_collapsed=self._collapsed,
                evictions=self._evictions,
                invalidations=self._invalidations,
                expirations=self._expirations,
                entries=len(self._entries),
                in_flight=len(self._flights),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (binding, flights and counters survive)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the counters (entries and binding survive)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._collapsed = 0
            self._evictions = 0
            self._invalidations = 0
            self._expirations = 0
