"""Shared, thread-safe semantic-graph weight cache.

The engine's per-query :class:`~repro.core.semantic_graph.SemanticGraphView`
is correct but amnesiac: every query re-weights the same knowledge-graph
edges against the predicate space and re-derives the same ``m(u)`` bounds
(Lemma 1).  Both quantities are pure functions of the (graph, space,
``min_weight``) triple — nothing about a query instance enters them — so a
workload of repeated or overlapping queries can share them.

:class:`SemanticGraphCache` holds two LRU-bounded maps:

- **pair weights** ``(query predicate, graph predicate) → weight`` — the
  Eq. 5 cosines, clamped; cheap individually but looked up on every edge
  the A* search crosses;
- **adjacency bounds** ``(node, query predicate) → m(u)`` — each miss costs
  a full incident-edge scan, which makes this map the dominant saving on
  repeated workloads (every A* estimate needs an ``m(u)``).

A third LRU map holds **rows** — opaque whole-graph vectors keyed by
``(kind, query predicate)`` — for the compact CSR kernel
(:mod:`repro.core.compact_view`), whose unit of sharing is one query
predicate against the entire graph (``kind="weights"``: clamped weight
per interned graph-predicate id; ``kind="bounds"``: ``m(u)`` per node).
Rows are treated as immutable by contract; the cache never copies them.

Eviction never affects correctness — a miss recomputes — so the LRU bound
is purely a memory ceiling.  All operations take one lock; the critical
sections are dict lookups, far cheaper than the graph traversal they
replace.  Hit/miss/eviction counts are kept per map and aggregated by
:class:`CacheStats`.

The cache must be *bound* to exactly one (graph, space, ``min_weight``)
combination before use (views do this automatically); re-binding to a
different combination raises — serving weights from a different predicate
space would corrupt results silently.  The fingerprint views bind also
carries the graph's entity/edge counts, so growing the append-only graph
under a live cache raises at the next view construction instead of
silently serving stale ``m(u)`` bounds or rows.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ServeError


@dataclass
class CacheStats:
    """A point-in-time snapshot of cache effectiveness."""

    weight_hits: int = 0
    weight_misses: int = 0
    weight_evictions: int = 0
    adjacency_hits: int = 0
    adjacency_misses: int = 0
    adjacency_evictions: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_evictions: int = 0
    weight_entries: int = 0
    adjacency_entries: int = 0
    row_entries: int = 0

    @property
    def hits(self) -> int:
        return self.weight_hits + self.adjacency_hits + self.row_hits

    @property
    def misses(self) -> int:
        return self.weight_misses + self.adjacency_misses + self.row_misses

    @property
    def evictions(self) -> int:
        return self.weight_evictions + self.adjacency_evictions + self.row_evictions

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def describe(self) -> str:
        return (
            f"hit_rate={self.hit_rate:.3f} "
            f"(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, "
            f"entries={self.weight_entries}+{self.adjacency_entries}"
            f"+{self.row_entries})"
        )


class LruMap:
    """A capacity-bounded LRU dict with hit/miss/eviction counters.

    Not locked — callers (the cache below, the service's decomposition
    memo) synchronise around it.  Values are arbitrary objects; ``None``
    is reserved as the miss sentinel.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ServeError(f"cache capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self.entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple):
        value = self.entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self.entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Tuple, value) -> None:
        if key in self.entries:
            self.entries.move_to_end(key)
        self.entries[key] = value
        while len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self.entries.clear()


class SemanticGraphCache:
    """Cross-query LRU cache of semantic-graph weights and ``m(u)`` bounds.

    Implements the :class:`~repro.core.semantic_graph.WeightCache`
    protocol; hand one instance to a
    :class:`~repro.core.engine.SemanticGraphQueryEngine` (``weight_cache=``)
    or let :class:`~repro.serve.service.QueryService` own one.

    Args:
        max_pairs: capacity of the pair-weight map.  The live pair count is
            ``|query predicates seen| × |graph predicates|`` — small — so
            the default never evicts in practice; it exists as a hard
            ceiling for adversarial predicate churn.
        max_adjacency: capacity of the adjacency map, the memory-heavy one
            (up to ``|touched nodes| × |query predicates seen|`` entries).
        max_rows: capacity of the row map used by compact views.  The
            live count is ``2 × |query predicates seen|``; the bound caps
            adversarial predicate churn.  Unlike the scalar maps, each
            entry here is a whole-graph vector — bounds rows cost 8 bytes
            *per graph node* — so deployments on very large graphs should
            size ``max_rows`` against ``8 × num_nodes`` per entry, not
            treat it as a near-free ceiling.
    """

    def __init__(
        self,
        *,
        max_pairs: int = 65536,
        max_adjacency: int = 1_000_000,
        max_rows: int = 1024,
    ):
        self._lock = threading.Lock()
        self._weights = LruMap(max_pairs)
        self._adjacent = LruMap(max_adjacency)
        self._rows = LruMap(max_rows)
        self._fingerprint: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # WeightCache protocol
    # ------------------------------------------------------------------
    def bind(self, fingerprint: Tuple) -> None:
        """Pin this cache to one (graph, space, min_weight) combination.

        The stored fingerprint keeps strong references to its objects and
        compares them by identity — holding them alive is what guarantees
        a recycled memory address can never impersonate the bound graph
        or space.
        """
        with self._lock:
            if self._fingerprint is None:
                self._fingerprint = fingerprint
                return
            same = len(self._fingerprint) == len(fingerprint) and all(
                ours is theirs or ours == theirs
                for ours, theirs in zip(self._fingerprint, fingerprint)
            )
            if not same:
                raise ServeError(
                    "SemanticGraphCache is already bound to a different "
                    "(graph, space, min_weight) combination — or the "
                    "append-only graph has grown since binding, which "
                    "invalidates cached m(u) bounds and rows.  Use one "
                    "cache per engine configuration and rebuild it after "
                    "graph mutation."
                )

    def get_weight(self, query_predicate: str, graph_predicate: str) -> Optional[float]:
        with self._lock:
            return self._weights.get((query_predicate, graph_predicate))

    def put_weight(self, query_predicate: str, graph_predicate: str, weight: float) -> None:
        with self._lock:
            self._weights.put((query_predicate, graph_predicate), weight)

    def get_adjacent(self, uid: int, query_predicate: str) -> Optional[float]:
        with self._lock:
            return self._adjacent.get((uid, query_predicate))

    def put_adjacent(self, uid: int, query_predicate: str, weight: float) -> None:
        with self._lock:
            self._adjacent.put((uid, query_predicate), weight)

    def get_row(self, kind: str, query_predicate: str) -> Optional[object]:
        """One whole-graph row (compact-kernel protocol); ``None`` on miss."""
        with self._lock:
            return self._rows.get((kind, query_predicate))

    def put_row(self, kind: str, query_predicate: str, row: object) -> None:
        """Publish a whole-graph row.  Rows are immutable by contract."""
        with self._lock:
            self._rows.put((kind, query_predicate), row)

    # ------------------------------------------------------------------
    # introspection / maintenance
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Consistent snapshot of counters and entry counts."""
        with self._lock:
            return CacheStats(
                weight_hits=self._weights.hits,
                weight_misses=self._weights.misses,
                weight_evictions=self._weights.evictions,
                adjacency_hits=self._adjacent.hits,
                adjacency_misses=self._adjacent.misses,
                adjacency_evictions=self._adjacent.evictions,
                row_hits=self._rows.hits,
                row_misses=self._rows.misses,
                row_evictions=self._rows.evictions,
                weight_entries=len(self._weights.entries),
                adjacency_entries=len(self._adjacent.entries),
                row_entries=len(self._rows.entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._weights.entries)
                + len(self._adjacent.entries)
                + len(self._rows.entries)
            )

    def clear(self) -> None:
        """Drop all entries (the binding and counters survive)."""
        with self._lock:
            self._weights.clear()
            self._adjacent.clear()
            self._rows.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (entries survive).

        Lets a workload driver report per-phase hit rates — e.g. reset
        after a cold pass so the warm pass's rate is not diluted by the
        cold misses.
        """
        with self._lock:
            for lru in (self._weights, self._adjacent, self._rows):
                lru.hits = 0
                lru.misses = 0
                lru.evictions = 0
