"""Supervision for execution backends: retries, rebuilds, shedding.

A healthy pool keeps the TBQ latency promise; this module keeps the
*service* alive when the pool is not healthy.  :class:`SupervisedBackend`
wraps any :class:`~repro.serve.backends.ExecutionBackend` and layers on,
in order of escalation:

1. **Retries** — failures classified retryable by the taxonomy in
   :mod:`repro.errors` (queries are read-only, hence idempotent) are
   re-submitted with capped exponential backoff whose jitter comes from
   a seeded stream (:class:`BackoffPolicy`), so a chaos run's retry
   timing is bit-reproducible.
2. **Pool rebuild** — a ``BrokenExecutor`` from the process backend
   means a worker died and took the whole pool with it; the supervisor
   rebuilds the pool in place through a caller-supplied ``rebuild``
   callable (the service's, which also releases and re-acquires the
   shared-memory graph lease so ``/dev/shm`` stays leak-free) and
   replays the victims onto the new pool.
3. **Circuit breaker + fallback** — when the pool breaks repeatedly
   (``threshold`` consecutive breaks), the breaker *opens* and requests
   ride a caller-supplied inline ``fallback_factory`` backend instead of
   thrashing rebuilds; after ``cooldown_seconds`` the breaker goes
   *half-open* and the next pool-bound request probes with a fresh
   rebuild — success closes the circuit.
4. **Hard timeout** — a per-request wall-clock bound on future
   resolution, distinct from a TBQ deadline (which budgets the *search*
   and still returns an anytime answer): the hard timeout is the
   backstop against a hung worker, and fires
   :class:`~repro.errors.RequestTimeoutError`.
5. **Load shedding** — a bounded admission count; submissions beyond
   ``max_pending`` unresolved requests fail fast with
   :class:`~repro.errors.OverloadError` instead of growing the queue
   without bound.

The wrapper honours the :class:`ExecutionBackend` contract, including
the ``on_complete``-before-resolution accounting ordering — and fires it
exactly once per request regardless of how many attempts ran, so the
wrapped inner backends are constructed with ``on_complete=None``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import BrokenExecutor, Future
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import (
    OverloadError,
    RequestTimeoutError,
    RetryableServeError,
    RetryExhaustedError,
    ServeError,
    WorkerCrashError,
)
from repro.serve.backends import ExecutionBackend, WorkerSnapshot, _notify
from repro.utils.rng import derive_rng

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "ResilienceStats",
    "SupervisedBackend",
]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with seeded jitter.

    ``schedule(token)`` returns the full delay sequence for one request
    up front: attempt ``i`` retries after
    ``min(base * multiplier**i, cap) * (1 - jitter * u_i)`` seconds,
    where ``u_i`` is drawn from ``derive_rng(seed, "backoff:" + token)``.
    Same (policy, token) → bit-identical delays, which is what makes
    chaos replays reproducible; distinct tokens de-synchronise retry
    storms the way jitter is supposed to.
    """

    retries: int = 2
    base_seconds: float = 0.01
    cap_seconds: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ServeError(f"retries must be >= 0, got {self.retries}")
        if self.base_seconds < 0:
            raise ServeError(f"base_seconds must be >= 0, got {self.base_seconds}")
        if self.cap_seconds < self.base_seconds:
            raise ServeError(
                f"cap_seconds ({self.cap_seconds}) must be >= base_seconds "
                f"({self.base_seconds})"
            )
        if self.multiplier < 1.0:
            raise ServeError(f"multiplier must be >= 1, got {self.multiplier}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ServeError(f"jitter must be in [0, 1], got {self.jitter}")

    def schedule(self, token: str = "") -> Tuple[float, ...]:
        """Deterministic backoff delays (seconds) for each retry attempt."""
        if self.retries == 0:
            return ()
        rng = derive_rng(self.seed, f"backoff:{token}")
        draws = rng.random(self.retries)
        delays = []
        for attempt in range(self.retries):
            raw = min(self.base_seconds * self.multiplier**attempt, self.cap_seconds)
            delays.append(raw * (1.0 - self.jitter * float(draws[attempt])))
        return tuple(delays)


class CircuitBreaker:
    """Consecutive-break counter with open/half-open/closed states.

    - ``closed``: pool-bound traffic flows; every break increments the
      consecutive-break count, every pool success zeroes it.
    - ``open``: entered after ``threshold`` consecutive breaks; pool
      traffic is refused (``allow_pool() == False``) so requests ride
      the fallback instead of thrashing rebuilds.
    - ``half-open``: entered when ``allow_pool()`` is consulted after
      ``cooldown_seconds`` in ``open``; pool traffic is allowed again as
      a probe.  A success closes the circuit, another break re-opens it
      with a fresh cooldown.
    """

    def __init__(self, threshold: int = 3, cooldown_seconds: float = 5.0):
        if threshold < 1:
            raise ServeError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown_seconds < 0:
            raise ServeError(
                f"breaker cooldown must be >= 0, got {cooldown_seconds}"
            )
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._lock = threading.Lock()
        self._breaks = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def record_break(self) -> None:
        with self._lock:
            self._breaks += 1
            if self._breaks >= self.threshold:
                self._state = "open"
                self._opened_at = time.monotonic()

    def record_pool_success(self) -> None:
        with self._lock:
            self._breaks = 0
            self._state = "closed"

    def allow_pool(self) -> bool:
        with self._lock:
            if self._state == "closed":
                return True
            if time.monotonic() - self._opened_at >= self.cooldown_seconds:
                self._state = "half-open"
                return True
            return False


@dataclass
class ResilienceStats:
    """Supervision counters (monotonic over the supervisor's lifetime).

    ``rebuild_seconds`` records each pool rebuild's wall-clock cost —
    the recovery-latency number the chaos gate reports.
    ``breaker_state`` is a gauge sampled when the snapshot was taken.
    """

    retries: int = 0
    pool_rebuilds: int = 0
    shed: int = 0
    crashes: int = 0
    timeouts: int = 0
    fallbacks: int = 0
    rebuild_seconds: List[float] = field(default_factory=list)
    breaker_state: str = "closed"

    def to_json(self) -> dict:
        return {
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "shed": self.shed,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "fallbacks": self.fallbacks,
            "rebuild_seconds": [round(s, 6) for s in self.rebuild_seconds],
            "breaker_state": self.breaker_state,
        }


def _is_pool_break(exc: BaseException) -> bool:
    return isinstance(exc, BrokenExecutor)


def _is_retryable(exc: BaseException) -> bool:
    return isinstance(exc, RetryableServeError) or _is_pool_break(exc)


_EVENT_FIELDS = {
    "retry": "retries",
    "pool_rebuild": "pool_rebuilds",
    "shed": "shed",
    "crash": "crashes",
    "timeout": "timeouts",
    "fallback": "fallbacks",
}


class SupervisedBackend(ExecutionBackend):
    """Retry/rebuild/shed supervision over any execution backend.

    Args:
        inner: the backend to supervise.  Must have been constructed
            with ``on_complete=None`` — the supervisor owns accounting
            and fires its own ``on_complete`` exactly once per request.
        policy: retry/backoff policy (default :class:`BackoffPolicy`).
        hard_timeout: per-request wall-clock bound (seconds) on future
            resolution; ``None`` disables it.
        max_pending: bounded admission — submissions beyond this many
            unresolved requests raise :class:`~repro.errors.OverloadError`;
            ``None`` disables shedding.
        breaker: circuit breaker governing pool-vs-fallback routing
            (only consulted when ``fallback_factory`` is given).
        rebuild: zero-arg callable returning a fresh inner backend,
            invoked (serialised under the pool lock) when the current
            one breaks; ``None`` means the inner backend cannot break
            structurally (inline/thread).
        fallback_factory: zero-arg callable building the degraded-mode
            backend (typically inline in the parent process), built
            lazily the first time the circuit opens.
        on_complete: the service's accounting hook; invoked exactly once
            per request, strictly before the returned future resolves.
        on_event: optional ``(kind: str) -> None`` hook mirroring each
            supervision event (``retry`` / ``pool_rebuild`` / ``shed`` /
            ``crash`` / ``timeout`` / ``fallback``) into service-level
            counters.
    """

    stats_scope = "shared"  # overridden per-instance from the inner backend

    def __init__(
        self,
        inner: ExecutionBackend,
        *,
        policy: Optional[BackoffPolicy] = None,
        hard_timeout: Optional[float] = None,
        max_pending: Optional[int] = None,
        breaker: Optional[CircuitBreaker] = None,
        rebuild: Optional[Callable[[], ExecutionBackend]] = None,
        fallback_factory: Optional[Callable[[], ExecutionBackend]] = None,
        on_complete: Optional[Callable[[bool], None]] = None,
        on_event: Optional[Callable[[str], None]] = None,
    ):
        if hard_timeout is not None and hard_timeout <= 0:
            raise ServeError(f"hard_timeout must be > 0, got {hard_timeout}")
        if max_pending is not None and max_pending < 1:
            raise ServeError(f"max_pending must be >= 1, got {max_pending}")
        self._inner = inner
        self._policy = policy if policy is not None else BackoffPolicy()
        self._hard_timeout = hard_timeout
        self._max_pending = max_pending
        self._breaker = breaker if breaker is not None else CircuitBreaker()
        self._rebuild = rebuild
        self._fallback_factory = fallback_factory
        self._fallback: Optional[ExecutionBackend] = None
        self._on_complete = on_complete
        self._on_event = on_event
        self.name = f"supervised[{inner.name}]"
        self.stats_scope = inner.stats_scope
        self.workers = getattr(inner, "workers", 1)
        # One lock serialises everything structural: which inner backend
        # is current, whether it is broken, and rebuilds.  Submits take
        # it briefly; a rebuild holds it so concurrent retries queue up
        # behind the recovery instead of racing into a dead pool.
        self._pool_lock = threading.RLock()
        self._generation = 0
        self._broken = False
        self._closed = False
        self._admission_lock = threading.Lock()
        self._pending = 0
        self._seq = 0
        self._stats = ResilienceStats()
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # events + stats
    # ------------------------------------------------------------------
    def _event(self, kind: str) -> None:
        name = _EVENT_FIELDS[kind]
        with self._stats_lock:
            setattr(self._stats, name, getattr(self._stats, name) + 1)
        if self._on_event is not None:
            self._on_event(kind)

    def resilience_stats(self) -> ResilienceStats:
        """A consistent copy of the supervision counters."""
        with self._stats_lock:
            snap = ResilienceStats(
                retries=self._stats.retries,
                pool_rebuilds=self._stats.pool_rebuilds,
                shed=self._stats.shed,
                crashes=self._stats.crashes,
                timeouts=self._stats.timeouts,
                fallbacks=self._stats.fallbacks,
                rebuild_seconds=list(self._stats.rebuild_seconds),
            )
        snap.breaker_state = self._breaker.state
        return snap

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    @property
    def generation(self) -> int:
        """How many pools have served (increments on every rebuild)."""
        with self._pool_lock:
            return self._generation

    @property
    def inner(self) -> ExecutionBackend:
        """The currently-serving inner backend (changes across rebuilds)."""
        with self._pool_lock:
            return self._inner

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _submit_to_pool(self, request, submitted_wall: float):
        """Submit to the current pool; returns (future, generation).

        Runs under the pool lock so a submit can never race a rebuild
        into a half-dead executor.  A known-broken pool is rebuilt first
        (this is the half-open probe path when the circuit re-allows
        pool traffic); rebuild failures surface as retryable
        :class:`~repro.errors.WorkerCrashError` so the request can fall
        back or exhaust its budget cleanly.
        """
        with self._pool_lock:
            if self._closed:
                raise ServeError("supervised backend is closed")
            if self._broken:
                try:
                    self._rebuild_locked()
                except BaseException as exc:
                    self._breaker.record_break()
                    err = WorkerCrashError(f"pool rebuild failed: {exc}")
                    err.__cause__ = exc
                    raise err
            generation = self._generation
            try:
                future = self._inner.submit(request, submitted_wall)
            except BaseException as exc:
                if _is_pool_break(exc):
                    self._note_broken(generation)
                raise
        return future, generation

    def _note_broken(self, generation: int) -> None:
        """Record a pool break observed on ``generation`` (idempotent).

        Only the first report of a given break counts: later failures
        from the same dead pool arrive with a stale generation (or find
        ``_broken`` already set) and are ignored, so one worker death is
        one crash, one breaker strike and at most one rebuild.
        """
        with self._pool_lock:
            if self._closed:
                return
            if self._broken or generation != self._generation:
                return
            self._event("crash")
            self._breaker.record_break()
            self._broken = True
            if self._rebuild is None:
                return
            if self._fallback_factory is not None and not self._breaker.allow_pool():
                # Circuit open: requests ride the fallback; the rebuild
                # is deferred to the half-open probe in _submit_to_pool.
                return
            try:
                self._rebuild_locked()
            except Exception:
                # Rebuild failed; _broken stays set and the next
                # pool-bound submit retries the recovery.
                self._breaker.record_break()

    def _rebuild_locked(self) -> None:
        if self._rebuild is None:
            self._broken = False
            return
        start = time.monotonic()
        try:
            self._inner.close(wait=False)
        except Exception:
            pass  # a broken executor may refuse a clean shutdown
        self._inner = self._rebuild()  # raises → _broken stays set
        self._generation += 1
        self._broken = False
        elapsed = time.monotonic() - start
        with self._stats_lock:
            self._stats.rebuild_seconds.append(elapsed)
        self._event("pool_rebuild")

    def _ensure_fallback(self) -> ExecutionBackend:
        with self._pool_lock:
            if self._closed:
                raise ServeError("supervised backend is closed")
            if self._fallback is None:
                assert self._fallback_factory is not None
                self._fallback = self._fallback_factory()
            return self._fallback

    def _request_finished(self, success: bool) -> None:
        with self._admission_lock:
            self._pending -= 1
        _notify(self._on_complete, success)

    # ------------------------------------------------------------------
    # ExecutionBackend contract
    # ------------------------------------------------------------------
    def submit(self, request, submitted_wall: float) -> "Future":
        with self._admission_lock:
            if self._max_pending is not None and self._pending >= self._max_pending:
                pending = self._pending
                shed = True
            else:
                self._pending += 1
                self._seq += 1
                seq = self._seq
                shed = False
        if shed:
            self._event("shed")
            raise OverloadError(
                f"admission queue full on backend {self._inner.name!r} "
                f"({pending} requests in flight >= max_pending="
                f"{self._max_pending}); request shed"
            )
        outer: "Future" = Future()
        token = f"{request.tag or 'q'}#{seq}"
        _SupervisedRequest(self, request, submitted_wall, outer, token).begin()
        return outer

    def snapshots(self) -> List[WorkerSnapshot]:
        from dataclasses import replace as _replace

        with self._pool_lock:
            inner = self._inner
            fallback = self._fallback
        rows = list(inner.snapshots())
        if fallback is not None:
            rows.extend(
                _replace(row, worker_id="fallback") for row in fallback.snapshots()
            )
        return rows

    def warmup(self, timeout: Optional[float] = None) -> int:
        with self._pool_lock:
            inner = self._inner
        return inner.warmup(timeout=timeout)

    def close(self, wait: bool = True) -> None:
        with self._pool_lock:
            if self._closed:
                return
            self._closed = True
            inner = self._inner
            fallback = self._fallback
        inner.close(wait=wait)
        if fallback is not None:
            fallback.close(wait=wait)


class _SupervisedRequest:
    """Per-request supervision state machine.

    Driven entirely by done-callbacks and daemon timers: ``_launch``
    picks a target (pool, or fallback when the circuit is open) and
    submits an attempt; ``_resolve_failure`` classifies, maybe notes a
    pool break, and either schedules a retry or finishes; the hard
    timeout races all of it and wins at most once — ``_finish`` is
    guarded so exactly one outcome reaches the outer future and the
    accounting hook.
    """

    def __init__(
        self,
        backend: SupervisedBackend,
        request,
        submitted_wall: float,
        outer: "Future",
        token: str,
    ):
        self._b = backend
        self.request = request
        self.submitted_wall = submitted_wall
        self.outer = outer
        self._schedule = backend._policy.schedule(token)
        self._attempt = 0
        self._flock = threading.Lock()
        self._finished = False
        self._timer: Optional[threading.Timer] = None

    def begin(self) -> None:
        b = self._b
        if b._hard_timeout is not None:
            timer = threading.Timer(b._hard_timeout, self._on_timeout)
            timer.daemon = True
            with self._flock:
                self._timer = timer
            timer.start()
        self._launch()

    def _launch(self) -> None:
        with self._flock:
            if self._finished:
                return
        b = self._b
        use_pool = b._fallback_factory is None or b._breaker.allow_pool()
        if use_pool:
            try:
                future, generation = b._submit_to_pool(
                    self.request, self.submitted_wall
                )
            except BaseException as exc:
                # _submit_to_pool already noted any pool break.
                self._resolve_failure(exc, generation=-1, note_break=False)
                return
            future.add_done_callback(
                lambda f: self._on_done(f, generation, used_pool=True)
            )
            return
        try:
            fallback = b._ensure_fallback()
        except BaseException as exc:
            self._finish(False, error=exc)
            return
        b._event("fallback")
        future = fallback.submit(self.request, self.submitted_wall)
        future.add_done_callback(lambda f: self._on_done(f, -1, used_pool=False))

    def _on_done(self, future: "Future", generation: int, used_pool: bool) -> None:
        exc = future.exception()
        if exc is None:
            if used_pool:
                self._b._breaker.record_pool_success()
            self._finish(True, result=future.result())
            return
        self._resolve_failure(exc, generation=generation, note_break=used_pool)

    def _resolve_failure(
        self, exc: BaseException, *, generation: int, note_break: bool
    ) -> None:
        b = self._b
        with self._flock:
            if self._finished:
                return
        if note_break and _is_pool_break(exc):
            b._note_broken(generation)
        elif isinstance(exc, WorkerCrashError) and exc.__cause__ is None:
            # An injected crash on a shared-memory backend: count the
            # "worker death" even though no pool broke.  (Rebuild-failure
            # wrappers carry a __cause__ and were already counted.)
            b._event("crash")
        if _is_retryable(exc):
            if self._attempt < len(self._schedule):
                delay = self._schedule[self._attempt]
                self._attempt += 1
                b._event("retry")
                if delay > 0:
                    timer = threading.Timer(delay, self._launch)
                    timer.daemon = True
                    timer.start()
                else:
                    self._launch()
                return
            tag = f" {self.request.tag!r}" if self.request.tag else ""
            wrapped = RetryExhaustedError(
                f"request{tag} still failing after {len(self._schedule) + 1} "
                f"attempts: {exc}"
            )
            wrapped.__cause__ = exc
            exc = wrapped
        self._finish(False, error=exc)

    def _on_timeout(self) -> None:
        tag = f" {self.request.tag!r}" if self.request.tag else ""
        self._finish(
            False,
            error=RequestTimeoutError(
                f"request{tag} exceeded the serving hard timeout "
                f"({self._b._hard_timeout:g}s) on backend "
                f"{self._b._inner.name!r}; this bounds future resolution "
                "and is distinct from a TBQ deadline"
            ),
            pre_resolve=lambda: self._b._event("timeout"),
        )

    def _finish(self, success: bool, *, result=None, error=None, pre_resolve=None) -> bool:
        """Settle the request exactly once; returns whether this call won."""
        with self._flock:
            if self._finished:
                return False
            self._finished = True
            timer, self._timer = self._timer, None
        if timer is not None:
            timer.cancel()
        if pre_resolve is not None:
            pre_resolve()
        cancelled = not self.outer.set_running_or_notify_cancel()
        # Accounting strictly before the outer future resolves; a
        # caller-cancelled request completes as a failure (the result,
        # if any, is dropped) — mirrors ProcessBackend._relay.
        self._b._request_finished(success and not cancelled)
        if cancelled:
            return True
        if success:
            self.outer.set_result(result)
        else:
            self.outer.set_exception(error)
        return True
