"""The predicate semantic space E = {e1...en} of Section IV-A.

Maps each predicate name to its semantic vector and answers the questions
the rest of the system asks:

- ``similarity(a, b)`` — the cosine of Eq. 5, used as semantic-graph edge
  weights;
- ``similarity_row(p)`` / ``similarity_matrix(preds)`` — the cosines of
  one (or several) predicates against **all** predicates at once, one
  matvec per row.  The compact graph kernel
  (:mod:`repro.core.compact_view`) materialises a whole query predicate's
  weights this way instead of one pair at a time;
- ``top_similar(p, n)`` — the n most similar predicates, used by the edge-
  noise experiment (Section VII-E replaces a predicate with one of its
  top-10 neighbours) and by debugging tools.

Memoisation is **row-level and bounded**: the space keeps an LRU of
similarity rows (one ``float64`` vector per predicate asked about), and
``similarity(a, b)`` reads element ``b`` of row ``a``.  Query workloads
ask about few distinct predicates but pair each with every graph
predicate, so a row is exactly the reuse unit — and unlike the old
per-pair dict, the LRU cannot grow without bound under workload replay.
Row reads also make the scalar and vector paths bit-identical: both
serve from the same matvec output.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EmbeddingError, UnknownPredicateError


@dataclass
class SpaceCacheStats:
    """Snapshot of the similarity-row cache (mirrors ``CacheStats``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of row lookups served from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def describe(self) -> str:
        return (
            f"row cache: hit_rate={self.hit_rate:.3f} "
            f"(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, entries={self.entries}/{self.capacity})"
        )


class PredicateSpace:
    """Immutable predicate → unit-vector mapping with cosine queries.

    Args:
        vectors: predicate name → vector mapping (normalised internally).
        max_cached_rows: LRU bound on memoised similarity rows.  Each row
            costs ``8 × len(space)`` bytes; eviction only ever costs a
            recomputed matvec.

    >>> import numpy as np
    >>> space = PredicateSpace({"a": np.array([1.0, 0.0]), "b": np.array([1.0, 1.0])})
    >>> round(space.similarity("a", "b"), 4)
    0.7071
    """

    def __init__(self, vectors: Mapping[str, np.ndarray], *, max_cached_rows: int = 256):
        if not vectors:
            raise EmbeddingError("predicate space needs at least one vector")
        if max_cached_rows < 1:
            raise EmbeddingError(
                f"max_cached_rows must be at least 1, got {max_cached_rows}"
            )
        dims = {np.asarray(v).shape for v in vectors.values()}
        if len(dims) != 1:
            raise EmbeddingError(f"inconsistent vector shapes: {sorted(dims)}")
        (shape,) = dims
        if len(shape) != 1 or shape[0] == 0:
            raise EmbeddingError("predicate vectors must be non-empty 1-D arrays")

        self._names: List[str] = list(vectors)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self._names)}
        matrix = np.array([np.asarray(vectors[name], dtype=float) for name in self._names])
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        if np.any(norms == 0):
            raise EmbeddingError("zero-norm predicate vector")
        self._matrix = matrix / norms
        # Bounded LRU of similarity rows: predicate index -> read-only row.
        # Locked: one space is shared by every QueryService worker thread,
        # and an unsynchronised LRU could evict an entry between a get and
        # its move_to_end (KeyError mid-query).  The critical section is
        # dict bookkeeping or one small matvec — far below query cost.
        self._rows: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._rows_lock = threading.Lock()
        self._max_rows = max_cached_rows
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._matrix.shape[1]

    def predicates(self) -> List[str]:
        return list(self._names)

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._index

    def __len__(self) -> int:
        return len(self._names)

    def index_of(self, predicate: str) -> int:
        """The stable row index of ``predicate`` in this space."""
        try:
            return self._index[predicate]
        except KeyError:
            raise UnknownPredicateError(predicate) from None

    def vector(self, predicate: str) -> np.ndarray:
        """The (unit-normalised) vector of ``predicate``."""
        return self._matrix[self.index_of(predicate)]

    # ------------------------------------------------------------------
    def _row(self, index: int) -> np.ndarray:
        """The memoised cosine row of predicate ``index`` (read-only)."""
        with self._rows_lock:
            row = self._rows.get(index)
            if row is not None:
                self._rows.move_to_end(index)
                self._hits += 1
                return row
            self._misses += 1
            # Elementwise product + per-row pairwise sum, NOT a BLAS
            # matvec: the reduction order is then identical for row(a)[b]
            # and row(b)[a], which keeps Eq. 5 exactly symmetric at the
            # ulp level (gemv blocking does not promise that).
            row = (self._matrix * self._matrix[index]).sum(axis=1)
            # The self-cosine is exactly 1.0 by definition; the product
            # sum only promises it to rounding error.  Pin it so scalar
            # callers see the identity the paper's Eq. 5 assumes.
            row[index] = 1.0
            row.flags.writeable = False
            self._rows[index] = row
            while len(self._rows) > self._max_rows:
                self._rows.popitem(last=False)
                self._evictions += 1
            return row

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity (Eq. 5) in [-1, 1]; 1.0 when ``a == b``.

        Served from the memoised row of ``a`` — one matvec the first time
        ``a`` is asked about, an array read afterwards.
        """
        ia = self.index_of(a)
        ib = self.index_of(b)
        if ia == ib:
            return 1.0
        return float(self._row(ia)[ib])

    def similarity_row(self, predicate: str) -> np.ndarray:
        """Cosines of ``predicate`` against every predicate, space order.

        One matvec materialises the whole row (Eq. 5 against all graph
        predicates at once); the result is cached, read-only, and indexed
        by :meth:`index_of`.  ``row[index_of(predicate)]`` is exactly 1.0.
        """
        return self._row(self.index_of(predicate))

    def similarity_matrix(self, predicates: Sequence[str]) -> np.ndarray:
        """Stacked :meth:`similarity_row` for several predicates.

        Shape ``(len(predicates), len(space))``, row order following the
        argument.  Rows come from (and feed) the same cache as
        :meth:`similarity_row`, so values are bit-identical to the scalar
        path.
        """
        if len(predicates) == 0:
            return np.empty((0, len(self._names)))
        return np.stack([self.similarity_row(p) for p in predicates])

    # The lock is process-local; pickling (e.g. shipping a space to a
    # multiprocess worker next to a pickled CompactGraph) drops it and
    # the receiving process recreates a fresh one.
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        del state["_rows_lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._rows_lock = threading.Lock()

    def stats(self) -> SpaceCacheStats:
        """Hit/miss/eviction counters of the similarity-row cache."""
        with self._rows_lock:
            return SpaceCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._rows),
                capacity=self._max_rows,
            )

    def similarities_to(self, predicate: str) -> Dict[str, float]:
        """Cosine from ``predicate`` to every predicate (including itself)."""
        row = self.similarity_row(predicate)
        return {name: float(row[i]) for i, name in enumerate(self._names)}

    def top_similar(
        self, predicate: str, n: int = 10, *, include_self: bool = False
    ) -> List[Tuple[str, float]]:
        """The ``n`` most similar predicates, best first."""
        scores = self.similarities_to(predicate)
        if not include_self:
            scores.pop(predicate, None)
        ranked = sorted(scores.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:n]

    def with_private_rows(
        self, *, max_cached_rows: Optional[int] = None
    ) -> "PredicateSpace":
        """A clone sharing this space's vectors but with its own row LRU.

        The normalised matrix, name list and index are shared (no copy);
        only the memoised-row cache, its lock and its counters are fresh.
        Rows computed by the clone are bit-identical to this space's —
        the reduction runs over the very same matrix — so per-consumer
        clones (e.g. one per graph shard) trade a little recomputation
        for lock-free independence and per-consumer hit/miss stats.
        """
        clone = object.__new__(PredicateSpace)
        clone._names = self._names
        clone._index = self._index
        clone._matrix = self._matrix
        clone._rows = OrderedDict()
        clone._rows_lock = threading.Lock()
        clone._max_rows = (
            self._max_rows if max_cached_rows is None else max_cached_rows
        )
        if clone._max_rows < 1:
            raise EmbeddingError(
                f"max_cached_rows must be at least 1, got {clone._max_rows}"
            )
        clone._hits = 0
        clone._misses = 0
        clone._evictions = 0
        return clone

    # ------------------------------------------------------------------
    def subspace(self, predicates: Iterable[str]) -> "PredicateSpace":
        """A new space restricted to the given predicates."""
        return PredicateSpace({name: self.vector(name) for name in predicates})

    def with_vector(self, predicate: str, vector: np.ndarray) -> "PredicateSpace":
        """A new space with one vector added or replaced."""
        vectors = {name: self._matrix[i] for name, i in self._index.items()}
        vectors[predicate] = np.asarray(vector, dtype=float)
        return PredicateSpace(vectors)
