"""The predicate semantic space E = {e1...en} of Section IV-A.

Maps each predicate name to its semantic vector and answers the two
questions the rest of the system asks:

- ``similarity(a, b)`` — the cosine of Eq. 5, used as semantic-graph edge
  weights;
- ``top_similar(p, n)`` — the n most similar predicates, used by the edge-
  noise experiment (Section VII-E replaces a predicate with one of its
  top-10 neighbours) and by debugging tools.

Pairwise similarities are memoised: the A* search asks for the same
(query-predicate, graph-predicate) pair once per touched edge, and graphs
have few distinct predicates relative to edges.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.errors import EmbeddingError, UnknownPredicateError


class PredicateSpace:
    """Immutable predicate → unit-vector mapping with cosine queries.

    >>> import numpy as np
    >>> space = PredicateSpace({"a": np.array([1.0, 0.0]), "b": np.array([1.0, 1.0])})
    >>> round(space.similarity("a", "b"), 4)
    0.7071
    """

    def __init__(self, vectors: Mapping[str, np.ndarray]):
        if not vectors:
            raise EmbeddingError("predicate space needs at least one vector")
        dims = {np.asarray(v).shape for v in vectors.values()}
        if len(dims) != 1:
            raise EmbeddingError(f"inconsistent vector shapes: {sorted(dims)}")
        (shape,) = dims
        if len(shape) != 1 or shape[0] == 0:
            raise EmbeddingError("predicate vectors must be non-empty 1-D arrays")

        self._names: List[str] = list(vectors)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self._names)}
        matrix = np.array([np.asarray(vectors[name], dtype=float) for name in self._names])
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        if np.any(norms == 0):
            raise EmbeddingError("zero-norm predicate vector")
        self._matrix = matrix / norms
        self._cache: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._matrix.shape[1]

    def predicates(self) -> List[str]:
        return list(self._names)

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._index

    def __len__(self) -> int:
        return len(self._names)

    def vector(self, predicate: str) -> np.ndarray:
        """The (unit-normalised) vector of ``predicate``."""
        try:
            return self._matrix[self._index[predicate]]
        except KeyError:
            raise UnknownPredicateError(predicate) from None

    # ------------------------------------------------------------------
    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity (Eq. 5) in [-1, 1]; 1.0 when ``a == b``."""
        try:
            ia = self._index[a]
        except KeyError:
            raise UnknownPredicateError(a) from None
        try:
            ib = self._index[b]
        except KeyError:
            raise UnknownPredicateError(b) from None
        if ia == ib:
            return 1.0
        key = (ia, ib) if ia < ib else (ib, ia)
        cached = self._cache.get(key)
        if cached is None:
            cached = float(self._matrix[ia] @ self._matrix[ib])
            self._cache[key] = cached
        return cached

    def similarities_to(self, predicate: str) -> Dict[str, float]:
        """Cosine from ``predicate`` to every predicate (including itself)."""
        row = self._matrix @ self.vector(predicate)
        return {name: float(row[i]) for i, name in enumerate(self._names)}

    def top_similar(
        self, predicate: str, n: int = 10, *, include_self: bool = False
    ) -> List[Tuple[str, float]]:
        """The ``n`` most similar predicates, best first."""
        scores = self.similarities_to(predicate)
        if not include_self:
            scores.pop(predicate, None)
        ranked = sorted(scores.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:n]

    # ------------------------------------------------------------------
    def subspace(self, predicates: Iterable[str]) -> "PredicateSpace":
        """A new space restricted to the given predicates."""
        return PredicateSpace({name: self.vector(name) for name in predicates})

    def with_vector(self, predicate: str, vector: np.ndarray) -> "PredicateSpace":
        """A new space with one vector added or replaced."""
        vectors = {name: self._matrix[i] for name, i in self._index.items()}
        vectors[predicate] = np.asarray(vector, dtype=float)
        return PredicateSpace(vectors)
