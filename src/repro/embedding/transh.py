"""TransH (Wang et al., AAAI 2014).

Entities are projected onto a relation-specific hyperplane before the
translation:

    h⊥ = h - (wᵀh)w,   t⊥ = t - (wᵀt)w,   d = || h⊥ + r - t⊥ ||²

with ``w`` kept unit-norm.  TransH models 1-to-N / N-to-1 relations better
than TransE; the paper cites it as an interchangeable embedding choice, so
the library ships it behind the same interface.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.base import TranslationalModel, normalize_rows


class TransH(TranslationalModel):
    """TransH with per-relation hyperplane normals."""

    name = "TransH"

    def __init__(self, num_entities: int, num_relations: int, dim: int, seed: int = 0):
        super().__init__(num_entities, num_relations, dim, seed)
        rng = np.random.default_rng(seed + 1)
        self.normals = rng.standard_normal((num_relations, dim))
        normalize_rows(self.normals)

    def _project_delta(
        self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray
    ) -> np.ndarray:
        """``(h - t)⊥ + r`` for each triple, shape ``(batch, dim)``."""
        x = self.entity_vectors[heads] - self.entity_vectors[tails]
        w = self.normals[relations]
        coeff = np.einsum("ij,ij->i", w, x)[:, None]
        return x - coeff * w + self.relation_vectors[relations]

    def distance(
        self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray
    ) -> np.ndarray:
        delta = self._project_delta(heads, relations, tails)
        return np.einsum("ij,ij->i", delta, delta)

    def _accumulate(
        self, triples: np.ndarray, sign: float, learning_rate: float
    ) -> None:
        """One signed gradient pass (sign=+1 positives, -1 negatives).

        With x = h - t, e = x - (wᵀx)w + r and d = eᵀe:
            ∂d/∂h =  2(e - (wᵀe)w)        ∂d/∂t = -∂d/∂h
            ∂d/∂r =  2e
            ∂d/∂w = -2((wᵀe)x + (wᵀx)e)
        """
        heads, relations, tails = triples[:, 0], triples[:, 1], triples[:, 2]
        x = self.entity_vectors[heads] - self.entity_vectors[tails]
        w = self.normals[relations]
        wx = np.einsum("ij,ij->i", w, x)[:, None]
        e = x - wx * w + self.relation_vectors[relations]
        we = np.einsum("ij,ij->i", w, e)[:, None]

        grad_entity = 2.0 * (e - we * w)
        grad_relation = 2.0 * e
        grad_normal = -2.0 * (we * x + wx * e)

        step = sign * learning_rate
        np.add.at(self.entity_vectors, heads, -step * grad_entity)
        np.add.at(self.entity_vectors, tails, step * grad_entity)
        np.add.at(self.relation_vectors, relations, -step * grad_relation)
        np.add.at(self.normals, relations, -step * grad_normal)

    def apply_gradients(
        self,
        pos: np.ndarray,
        neg: np.ndarray,
        violating: np.ndarray,
        learning_rate: float,
    ) -> None:
        if not np.any(violating):
            return
        self._accumulate(pos[violating], +1.0, learning_rate)
        self._accumulate(neg[violating], -1.0, learning_rate)

    def post_batch(self) -> None:
        super().post_batch()
        normalize_rows(self.normals)
