"""Margin-ranking SGD trainer for translational embedding models.

Drives any :class:`~repro.embedding.base.TranslationalModel` over the
id-triples of a knowledge graph (Phase 1 / offline stage of Fig. 5).  The
paper trains TransE with embedding size 100 for 50 iterations (Table IX);
those are the defaults here, though tests use far smaller settings.

The trainer also records wall time and model memory so the scalability
experiment (Table IX: "KG embedding: offline / time, mem") can be
reproduced at our dataset scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Type

import numpy as np

from repro.errors import EmbeddingError
from repro.embedding.base import TranslationalModel
from repro.embedding.negative_sampling import NegativeSampler
from repro.embedding.predicate_space import PredicateSpace
from repro.embedding.transe import TransE
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple, graph_to_id_triples
from repro.utils.timing import Stopwatch


@dataclass
class TrainingConfig:
    """Hyper-parameters for embedding training."""

    dim: int = 100
    epochs: int = 50
    batch_size: int = 512
    learning_rate: float = 0.01
    margin: float = 1.0
    sampling: str = "uniform"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim <= 0 or self.epochs <= 0 or self.batch_size <= 0:
            raise EmbeddingError("dim, epochs and batch_size must be positive")
        if self.learning_rate <= 0 or self.margin < 0:
            raise EmbeddingError("learning_rate must be > 0 and margin >= 0")


@dataclass
class TrainingReport:
    """What happened during training (consumed by Table IX)."""

    model_name: str
    num_triples: int
    epochs: int
    loss_history: List[float] = field(default_factory=list)
    seconds: float = 0.0
    memory_bytes: int = 0

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


class EmbeddingTrainer:
    """Trains a model on a graph and exports the predicate space.

    >>> # trainer = EmbeddingTrainer(kg, TrainingConfig(dim=32, epochs=5))
    >>> # model, report = trainer.train(TransE)
    >>> # space = trainer.predicate_space(model)
    """

    def __init__(self, kg: KnowledgeGraph, config: Optional[TrainingConfig] = None):
        self.kg = kg
        self.config = config if config is not None else TrainingConfig()
        triples, vocab = graph_to_id_triples(kg)
        if not triples:
            raise EmbeddingError("graph has no edges to train on")
        self.triples = triples
        self.relation_vocab = vocab
        self._triple_array = np.array(
            [(t.head, t.relation, t.tail) for t in triples], dtype=np.int64
        )

    def train(
        self, model_class: Type[TranslationalModel] = TransE
    ) -> "tuple[TranslationalModel, TrainingReport]":
        """Run SGD and return the trained model plus a report."""
        config = self.config
        model = model_class(
            num_entities=self.kg.num_entities,
            num_relations=len(self.relation_vocab),
            dim=config.dim,
            seed=config.seed,
        )
        sampler = NegativeSampler(
            self.triples,
            num_entities=self.kg.num_entities,
            strategy=config.sampling,
            seed=config.seed + 1,
        )
        rng = np.random.default_rng(config.seed + 2)
        report = TrainingReport(
            model_name=model.name, num_triples=len(self.triples), epochs=config.epochs
        )
        watch = Stopwatch()

        for _epoch in range(config.epochs):
            order = rng.permutation(len(self._triple_array))
            epoch_loss = 0.0
            for start in range(0, len(order), config.batch_size):
                batch = self._triple_array[order[start : start + config.batch_size]]
                negatives = sampler.corrupt(batch)
                pos_distance = model.distance(batch[:, 0], batch[:, 1], batch[:, 2])
                neg_distance = model.distance(
                    negatives[:, 0], negatives[:, 1], negatives[:, 2]
                )
                losses = np.maximum(
                    0.0, config.margin + pos_distance - neg_distance
                )
                epoch_loss += float(losses.sum())
                violating = losses > 0
                model.apply_gradients(
                    batch, negatives, violating, config.learning_rate
                )
                model.post_batch()
            report.loss_history.append(epoch_loss / len(self._triple_array))

        report.seconds = watch.elapsed()
        report.memory_bytes = model.memory_bytes()
        return model, report

    def predicate_space(self, model: TranslationalModel) -> PredicateSpace:
        """Export the trained predicate vectors as a semantic space."""
        vectors = {
            name: np.array(model.relation_vector(index), dtype=float)
            for index, name in enumerate(self.relation_vocab)
        }
        return PredicateSpace(vectors)


def train_predicate_space(
    kg: KnowledgeGraph,
    config: Optional[TrainingConfig] = None,
    model_class: Type[TranslationalModel] = TransE,
) -> "tuple[PredicateSpace, TrainingReport]":
    """Convenience one-call pipeline: graph → trained predicate space."""
    trainer = EmbeddingTrainer(kg, config)
    model, report = trainer.train(model_class)
    return trainer.predicate_space(model), report
