"""Base class for translational knowledge-graph embedding models.

The paper summarises the family (Section IV-A): initialise vectors for the
elements of each triple ``<h, r, t>``, define a scoring function ``g`` such
that ``t ≈ g(h, r)``, and optimise it.  All three implemented models
(TransE, TransH, TransR) share the margin-based ranking objective

    L = Σ max(0, margin + d(pos) - d(neg))

over corrupted triples, differing only in the distance ``d``.  Subclasses
implement :meth:`distance` and :meth:`apply_gradients`; the trainer drives
SGD and negative sampling.

Distances use squared L2, whose gradients are linear and keep the pure-
numpy implementation simple and fast.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import EmbeddingError


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalise every row in place (zero rows are left untouched)."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    np.divide(matrix, norms, out=matrix, where=norms > 0)
    return matrix


class TranslationalModel:
    """Shared state and interface of translational embedding models."""

    name = "base"

    def __init__(self, num_entities: int, num_relations: int, dim: int, seed: int = 0):
        if num_entities <= 0 or num_relations <= 0:
            raise EmbeddingError("model needs at least one entity and one relation")
        if dim <= 0:
            raise EmbeddingError("embedding dimension must be positive")
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        rng = np.random.default_rng(seed)
        bound = 6.0 / np.sqrt(dim)
        self.entity_vectors = rng.uniform(-bound, bound, size=(num_entities, dim))
        self.relation_vectors = rng.uniform(-bound, bound, size=(num_relations, dim))
        normalize_rows(self.entity_vectors)
        normalize_rows(self.relation_vectors)

    # ------------------------------------------------------------------
    # interface
    # ------------------------------------------------------------------
    def distance(
        self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray
    ) -> np.ndarray:
        """Squared translation distance for index arrays; lower is better."""
        raise NotImplementedError

    def apply_gradients(
        self,
        pos: np.ndarray,
        neg: np.ndarray,
        violating: np.ndarray,
        learning_rate: float,
    ) -> None:
        """SGD step on the violating (margin-active) triple pairs.

        ``pos`` and ``neg`` are ``(batch, 3)`` index arrays of positive and
        corrupted triples; ``violating`` is a boolean mask over the batch.
        """
        raise NotImplementedError

    def post_batch(self) -> None:
        """Per-batch projection (e.g. entity renormalisation)."""
        normalize_rows(self.entity_vectors)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def relation_vector(self, relation: int) -> np.ndarray:
        """The semantic vector exported for a relation (predicate).

        For all three models this is the translation vector itself; TransH
        and TransR carry extra per-relation parameters, but the translation
        vector is what encodes "meaning" and is what the predicate space
        compares (Eq. 5).
        """
        if not 0 <= relation < self.num_relations:
            raise EmbeddingError(f"relation index {relation} out of range")
        return self.relation_vectors[relation]

    def parameter_count(self) -> int:
        """Total number of floats (for the Table IX memory report)."""
        return self.entity_vectors.size + self.relation_vectors.size

    def memory_bytes(self) -> int:
        """Approximate parameter memory footprint in bytes."""
        return self.parameter_count() * self.entity_vectors.itemsize
