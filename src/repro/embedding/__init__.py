"""Knowledge-graph embedding models and the predicate semantic space.

Phase 1 of the paper (Section IV-A): train a translational embedding
(TransE by default) offline, then expose the learned predicate vectors as a
:class:`~repro.embedding.predicate_space.PredicateSpace` whose cosine
similarities weight the semantic graph (Eq. 5).
"""

from repro.embedding.base import TranslationalModel
from repro.embedding.transe import TransE
from repro.embedding.transh import TransH
from repro.embedding.transr import TransR
from repro.embedding.trainer import EmbeddingTrainer, TrainingConfig, TrainingReport
from repro.embedding.predicate_space import PredicateSpace
from repro.embedding.oracle import oracle_predicate_space

__all__ = [
    "TranslationalModel",
    "TransE",
    "TransH",
    "TransR",
    "EmbeddingTrainer",
    "TrainingConfig",
    "TrainingReport",
    "PredicateSpace",
    "oracle_predicate_space",
]
