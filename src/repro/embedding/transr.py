"""TransR (Lin et al., AAAI 2015).

Entities live in an entity space, each relation carries a projection matrix
``M_r`` into its own relation space:

    d = || M_r h + r - M_r t ||²

This is the most expressive (and most expensive) of the three cited models;
it shares the relation-space dimension with the entity dimension here,
initialising ``M_r`` to the identity plus noise, so the untrained model
starts TransE-like and specialises per relation during training.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.base import TranslationalModel


class TransR(TranslationalModel):
    """TransR with per-relation projection matrices."""

    name = "TransR"

    def __init__(self, num_entities: int, num_relations: int, dim: int, seed: int = 0):
        super().__init__(num_entities, num_relations, dim, seed)
        rng = np.random.default_rng(seed + 2)
        noise = 0.1 * rng.standard_normal((num_relations, dim, dim)) / np.sqrt(dim)
        self.projections = np.eye(dim)[None, :, :] + noise

    def _project_delta(
        self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray
    ) -> np.ndarray:
        x = self.entity_vectors[heads] - self.entity_vectors[tails]
        projected = np.einsum("bij,bj->bi", self.projections[relations], x)
        return projected + self.relation_vectors[relations]

    def distance(
        self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray
    ) -> np.ndarray:
        delta = self._project_delta(heads, relations, tails)
        return np.einsum("ij,ij->i", delta, delta)

    def _accumulate(
        self, triples: np.ndarray, sign: float, learning_rate: float
    ) -> None:
        """Signed gradients; with x = h - t, e = M_r x + r:

            ∂d/∂h =  2 M_rᵀ e      ∂d/∂t = -2 M_rᵀ e
            ∂d/∂r =  2 e           ∂d/∂M_r = 2 e xᵀ
        """
        heads, relations, tails = triples[:, 0], triples[:, 1], triples[:, 2]
        x = self.entity_vectors[heads] - self.entity_vectors[tails]
        matrices = self.projections[relations]
        e = np.einsum("bij,bj->bi", matrices, x) + self.relation_vectors[relations]

        grad_entity = 2.0 * np.einsum("bij,bi->bj", matrices, e)
        grad_relation = 2.0 * e
        grad_matrix = 2.0 * np.einsum("bi,bj->bij", e, x)

        step = sign * learning_rate
        np.add.at(self.entity_vectors, heads, -step * grad_entity)
        np.add.at(self.entity_vectors, tails, step * grad_entity)
        np.add.at(self.relation_vectors, relations, -step * grad_relation)
        np.add.at(self.projections, relations, -step * grad_matrix)

    def apply_gradients(
        self,
        pos: np.ndarray,
        neg: np.ndarray,
        violating: np.ndarray,
        learning_rate: float,
    ) -> None:
        if not np.any(violating):
            return
        self._accumulate(pos[violating], +1.0, learning_rate)
        self._accumulate(neg[violating], -1.0, learning_rate)

    def parameter_count(self) -> int:
        return super().parameter_count() + self.projections.size
