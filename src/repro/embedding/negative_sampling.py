"""Negative (corrupted) triple sampling for margin-ranking training.

Implements the two classic strategies:

- ``"uniform"`` — corrupt head or tail with a fair coin (TransE paper);
- ``"bern"`` — per-relation Bernoulli that corrupts the side with more
  distinct partners (TransH paper), reducing false negatives on 1-to-N
  relations such as ``country`` (many cities share one country).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import EmbeddingError
from repro.kg.triples import Triple


class NegativeSampler:
    """Generates corrupted copies of a triple batch."""

    def __init__(
        self,
        triples: Sequence[Triple],
        num_entities: int,
        strategy: str = "uniform",
        seed: int = 0,
    ):
        if strategy not in ("uniform", "bern"):
            raise EmbeddingError(f"unknown sampling strategy {strategy!r}")
        if not triples:
            raise EmbeddingError("cannot sample negatives from an empty triple set")
        self.num_entities = num_entities
        self.strategy = strategy
        self._rng = np.random.default_rng(seed)
        self._known = {(t.head, t.relation, t.tail) for t in triples}
        self._head_probability = self._bernoulli_table(triples)

    def _bernoulli_table(self, triples: Sequence[Triple]) -> Dict[int, float]:
        """Per-relation probability of corrupting the head ("bern").

        With tph = mean tails per head and hpt = mean heads per tail, the
        TransH recipe corrupts the head with probability tph / (tph + hpt).
        """
        heads_by_relation: Dict[int, Dict[int, int]] = {}
        tails_by_relation: Dict[int, Dict[int, int]] = {}
        for triple in triples:
            heads_by_relation.setdefault(triple.relation, {}).setdefault(triple.head, 0)
            heads_by_relation[triple.relation][triple.head] += 1
            tails_by_relation.setdefault(triple.relation, {}).setdefault(triple.tail, 0)
            tails_by_relation[triple.relation][triple.tail] += 1
        table: Dict[int, float] = {}
        for relation in heads_by_relation:
            tph = np.mean(list(heads_by_relation[relation].values()))
            hpt = np.mean(list(tails_by_relation[relation].values()))
            table[relation] = float(tph / (tph + hpt))
        return table

    def corrupt(self, batch: np.ndarray) -> np.ndarray:
        """Return a corrupted copy of a ``(batch, 3)`` triple array.

        Each corrupted triple replaces head or tail by a random entity;
        corruptions that collide with a known true triple are resampled a
        few times, then accepted (standard practice — the probability of a
        surviving false negative is negligible and retrying forever would
        not terminate on dense graphs).
        """
        negatives = batch.copy()
        size = len(batch)
        if self.strategy == "uniform":
            corrupt_head = self._rng.random(size) < 0.5
        else:
            probs = np.array(
                [self._head_probability.get(int(r), 0.5) for r in batch[:, 1]]
            )
            corrupt_head = self._rng.random(size) < probs

        replacements = self._rng.integers(0, self.num_entities, size=size)
        negatives[corrupt_head, 0] = replacements[corrupt_head]
        negatives[~corrupt_head, 2] = replacements[~corrupt_head]

        for _attempt in range(3):
            collisions = [
                i
                for i in range(size)
                if (int(negatives[i, 0]), int(negatives[i, 1]), int(negatives[i, 2]))
                in self._known
            ]
            if not collisions:
                break
            redraw = self._rng.integers(0, self.num_entities, size=len(collisions))
            for slot, idx in enumerate(collisions):
                if corrupt_head[idx]:
                    negatives[idx, 0] = redraw[slot]
                else:
                    negatives[idx, 2] = redraw[slot]
        return negatives
