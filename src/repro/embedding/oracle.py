"""Deterministic "semantic-geometry oracle" predicate space.

Training TransE is the paper-faithful path (Section IV-A) and the default
pipeline does exactly that, but the experiment suite also needs a predicate
space that is (a) instant and (b) calibrated to the semantic geometry a
*well-trained* embedding exhibits on the corresponding real dataset — the
running examples of the paper pin concrete values (Fig. 2: sim(product,
assembly) = 0.98, sim(product, designer) = 0.85, sim(product, nationality)
= 0.81; Fig. 8 weights ``country`` at 0.98 on a correct 2-hop schema).

The oracle builds that geometry from the dataset schema's declared cluster
structure (:meth:`~repro.kg.schema.DomainSchema.cluster_affinity`):

1. assemble the target Gram matrix ``S`` — ``S[p,q]`` is the affinity of
   the two predicates' clusters plus a deterministic per-pair jitter;
2. project ``S`` to the positive semi-definite cone (clamp negative
   eigenvalues — the Higham-style nearest-PSD step);
3. factor ``S = V·Vᵀ`` and take the rows of ``V`` as predicate vectors,
   renormalised to unit length so cosines reproduce the targets.

The result is a valid inner-product space whose pairwise cosines track the
declared affinities to within a few hundredths — and, unlike a freshly
trained TransE on a small synthetic graph, it is identical on every run.
DESIGN.md records this as the substitution for "embeddings pretrained on
full DBpedia/Freebase/YAGO2"; the trainer remains implemented, tested and
used by default in the quickstart pipeline.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.embedding.predicate_space import PredicateSpace
from repro.kg.schema import DomainSchema
from repro.utils.rng import stable_hash


def oracle_predicate_space(
    schema: DomainSchema,
    *,
    jitter: float = 0.035,
    seed: int = 0,
    dim: Optional[int] = None,
) -> PredicateSpace:
    """Build the calibrated predicate space for a schema.

    Args:
        schema: generator schema declaring clusters and affinities.
        jitter: half-width of the deterministic per-pair perturbation
            (keeps same-cluster predicates from being exact duplicates and
            spreads pss values into bands, as the sensitivity experiment
            of Table X requires).
        seed: mixes into the per-pair jitter; the same (schema, seed) pair
            always produces the same space.
        dim: optional truncation of the factor rank (default: full rank =
            number of predicates).
    """
    names = [spec.name for spec in schema.predicates]
    clusters = {spec.name: spec.cluster for spec in schema.predicates}
    count = len(names)
    if count == 0:
        raise ValueError("schema declares no predicates")

    target = np.eye(count)
    pins = schema.predicate_affinity_overrides
    for i in range(count):
        for j in range(i + 1, count):
            pinned = pins.get(frozenset((names[i], names[j])))
            if pinned is not None:
                base, spread = pinned, 0.0
            else:
                base = schema.cluster_affinity(clusters[names[i]], clusters[names[j]])
                spread = _pair_jitter(schema.name, names[i], names[j], seed) * jitter
            value = float(np.clip(base + spread, -0.99, 0.995))
            target[i, j] = value
            target[j, i] = value

    target = _consistency_closure(target)
    vectors = _factor_gram(target, dim)
    return PredicateSpace({name: vectors[i] for i, name in enumerate(names)})


def _consistency_closure(target: np.ndarray, slack: float = 0.22) -> np.ndarray:
    """Raise affinities that contradict the cosine triangle bound.

    If a ~ b and b ~ c are both high, a and c cannot be near-orthogonal;
    the closure enforces ``T[a,c] >= T[a,b]·T[b,c] - slack`` (a relaxed
    triangle bound) so declared background values never fight the declared
    high-affinity chains.  Without it, the nearest-correlation projection
    spreads the inconsistency onto the *important* pairs instead.
    """
    matrix = target.copy()
    count = matrix.shape[0]
    for _round in range(3):
        changed = False
        for b in range(count):
            implied = np.outer(matrix[:, b], matrix[b, :]) - slack
            mask = implied > matrix
            if np.any(mask):
                matrix = np.where(mask, implied, matrix)
                changed = True
        np.fill_diagonal(matrix, 1.0)
        if not changed:
            break
    return matrix


def _pair_jitter(schema_name: str, a: str, b: str, seed: int) -> float:
    """Deterministic jitter in [-1, 1] for an unordered predicate pair."""
    lo, hi = sorted((a, b))
    unit = (stable_hash(f"{schema_name}:{lo}|{hi}:{seed}") % 100_000) / 100_000
    return 2.0 * unit - 1.0


def _nearest_correlation(target: np.ndarray, iterations: int = 50) -> np.ndarray:
    """Higham's alternating projections onto {PSD} ∩ {unit diagonal}.

    The declared affinities need not be jointly realisable (a cluster may
    be asked to sit close to geo yet far from geo's close neighbours);
    the nearest correlation matrix distributes that inconsistency smoothly
    instead of crushing the large affinities, which a single eigenvalue
    clamp does.
    """
    matrix = target.copy()
    correction = np.zeros_like(matrix)
    for _round in range(iterations):
        adjusted = matrix - correction
        eigenvalues, eigenvectors = np.linalg.eigh(adjusted)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        psd = (eigenvectors * eigenvalues[None, :]) @ eigenvectors.T
        correction = psd - adjusted
        matrix = psd.copy()
        np.fill_diagonal(matrix, 1.0)
    return matrix


def _factor_gram(target: np.ndarray, dim: Optional[int]) -> np.ndarray:
    """Factor the nearest correlation matrix into unit-norm rows."""
    corr = _nearest_correlation(target)
    eigenvalues, eigenvectors = np.linalg.eigh(corr)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    if dim is not None:
        # Keep the `dim` largest components (eigh sorts ascending).
        cutoff = len(eigenvalues) - dim
        if cutoff > 0:
            eigenvalues[:cutoff] = 0.0
    factors = eigenvectors * np.sqrt(eigenvalues)[None, :]
    norms = np.linalg.norm(factors, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return factors / norms
