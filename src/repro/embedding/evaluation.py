"""Link-prediction evaluation for embedding models.

The paper does not report embedding quality directly, but the reproduction
needs a sanity gauge that training worked (and the test suite asserts it).
This module implements the standard filtered link-prediction protocol of
the TransE paper: for each test triple, rank the true tail (head) against
all corrupted candidates, excluding other known-true triples, and report
mean rank / mean reciprocal rank / hits@k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Set, Tuple

import numpy as np

from repro.embedding.base import TranslationalModel
from repro.errors import EmbeddingError
from repro.kg.triples import Triple


@dataclass
class LinkPredictionResult:
    """Aggregate ranking metrics over an evaluation triple set."""

    mean_rank: float
    mean_reciprocal_rank: float
    hits_at_1: float
    hits_at_10: float
    num_evaluated: int


def evaluate_link_prediction(
    model: TranslationalModel,
    test_triples: Sequence[Triple],
    known_triples: Sequence[Triple],
    *,
    sides: Tuple[str, ...] = ("head", "tail"),
    max_triples: int = 500,
) -> LinkPredictionResult:
    """Filtered link prediction over ``test_triples``.

    ``known_triples`` should contain every true triple (train + test) so
    that other correct answers do not count as errors ("filtered" setting).
    ``max_triples`` caps the cost; evaluation uses the first N triples,
    which is deterministic.
    """
    if not test_triples:
        raise EmbeddingError("no test triples to evaluate")
    known: Set[Tuple[int, int, int]] = {
        (t.head, t.relation, t.tail) for t in known_triples
    }
    ranks = []
    entities = np.arange(model.num_entities)

    for triple in list(test_triples)[:max_triples]:
        for side in sides:
            if side == "tail":
                heads = np.full(model.num_entities, triple.head)
                relations = np.full(model.num_entities, triple.relation)
                distances = model.distance(heads, relations, entities)
                true_index = triple.tail
                mask = np.array(
                    [
                        (triple.head, triple.relation, int(e)) in known
                        and int(e) != triple.tail
                        for e in entities
                    ]
                )
            elif side == "head":
                tails = np.full(model.num_entities, triple.tail)
                relations = np.full(model.num_entities, triple.relation)
                distances = model.distance(entities, relations, tails)
                true_index = triple.head
                mask = np.array(
                    [
                        (int(e), triple.relation, triple.tail) in known
                        and int(e) != triple.head
                        for e in entities
                    ]
                )
            else:
                raise EmbeddingError(f"unknown side {side!r}")
            distances = distances.copy()
            distances[mask] = np.inf
            rank = 1 + int(np.sum(distances < distances[true_index]))
            ranks.append(rank)

    ranks_array = np.array(ranks, dtype=float)
    return LinkPredictionResult(
        mean_rank=float(ranks_array.mean()),
        mean_reciprocal_rank=float((1.0 / ranks_array).mean()),
        hits_at_1=float((ranks_array <= 1).mean()),
        hits_at_10=float((ranks_array <= 10).mean()),
        num_evaluated=len(ranks),
    )
