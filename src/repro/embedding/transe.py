"""TransE (Bordes et al., NIPS 2013) — the paper's default embedding.

Score: ``d(h, r, t) = || h + r - t ||²``.  Relations that connect similar
entity neighbourhoods converge to similar translation vectors (the
``product`` / ``assembly`` example of Fig. 6), which is exactly the signal
the predicate semantic space needs.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.base import TranslationalModel


class TransE(TranslationalModel):
    """Vectorised TransE with squared-L2 distance."""

    name = "TransE"

    def distance(
        self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray
    ) -> np.ndarray:
        delta = (
            self.entity_vectors[heads]
            + self.relation_vectors[relations]
            - self.entity_vectors[tails]
        )
        return np.einsum("ij,ij->i", delta, delta)

    def apply_gradients(
        self,
        pos: np.ndarray,
        neg: np.ndarray,
        violating: np.ndarray,
        learning_rate: float,
    ) -> None:
        if not np.any(violating):
            return
        pos = pos[violating]
        neg = neg[violating]

        pos_delta = (
            self.entity_vectors[pos[:, 0]]
            + self.relation_vectors[pos[:, 1]]
            - self.entity_vectors[pos[:, 2]]
        )
        neg_delta = (
            self.entity_vectors[neg[:, 0]]
            + self.relation_vectors[neg[:, 1]]
            - self.entity_vectors[neg[:, 2]]
        )
        # dL/d(pos_delta) = +2*delta ; dL/d(neg_delta) = -2*delta
        step = 2.0 * learning_rate
        # Positive triple pulls h + r toward t.
        np.add.at(self.entity_vectors, pos[:, 0], -step * pos_delta)
        np.add.at(self.relation_vectors, pos[:, 1], -step * pos_delta)
        np.add.at(self.entity_vectors, pos[:, 2], step * pos_delta)
        # Negative triple pushes its endpoints apart.
        np.add.at(self.entity_vectors, neg[:, 0], step * neg_delta)
        np.add.at(self.relation_vectors, neg[:, 1], step * neg_delta)
        np.add.at(self.entity_vectors, neg[:, 2], -step * neg_delta)
