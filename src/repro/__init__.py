"""repro — reproduction of "Semantic Guided and Response Times Bounded
Top-k Similarity Search over Knowledge Graphs" (Wang et al., ICDE 2020).

Public entry points:

- :class:`repro.kg.KnowledgeGraph` and :func:`repro.kg.generator.build_dataset`
  for the knowledge-graph substrate;
- :mod:`repro.embedding` for TransE/TransH/TransR and the predicate
  semantic space (Section IV-A);
- :mod:`repro.query` for query graphs, transformation library and
  decomposition (Sections III, IV-B);
- :class:`repro.core.engine.SemanticGraphQueryEngine` — the SGQ / TBQ engine
  (Sections V-VI);
- :mod:`repro.serve` — serving layer beyond the paper: shared semantic-
  graph weight cache, batched :class:`~repro.serve.service.QueryService`
  and the workload replay driver;
- :mod:`repro.baselines` for the seven comparison methods of Table II;
- :mod:`repro.bench` for workloads, metrics and experiment runners
  (Section VII).
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
