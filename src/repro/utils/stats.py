"""Statistics helpers shared by scoring and evaluation code.

The geometric mean here is the exact form of Eq. 6 in the paper (path
semantic similarity), computed in log space to avoid underflow on long
paths; the Pearson correlation implements the user-study metric of Section
VII-D.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; 0.0 if any value is <= 0.

    The paper's weights are cosine similarities clamped into [0, 1]; a zero
    weight means "semantically unrelated", which collapses the whole path
    score to zero rather than raising.

    >>> round(geometric_mean([0.5, 0.5]), 6)
    0.5
    >>> geometric_mean([1.0, 0.0])
    0.0
    """
    log_sum = 0.0
    count = 0
    for value in values:
        if value <= 0.0:
            return 0.0
        log_sum += math.log(value)
        count += 1
    if count == 0:
        raise ValueError("geometric_mean of an empty sequence")
    return math.exp(log_sum / count)


def nth_root_product(values: Iterable[float], n: int) -> float:
    """``(prod values) ** (1/n)`` in log space; 0.0 if any value <= 0.

    This is the estimated-pss form of Eq. 7, where the root order ``n`` (the
    user-desired path length bound) can exceed the number of factors.
    """
    if n <= 0:
        raise ValueError("root order must be positive")
    log_sum = 0.0
    for value in values:
        if value <= 0.0:
            return 0.0
        log_sum += math.log(value)
    return math.exp(log_sum / n)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises :class:`ValueError` on empty input."""
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    The nearest-rank definition always returns an observed value, which is
    what latency reporting wants (a p99 that was actually experienced by a
    request, not an interpolated artefact).

    >>> percentile([4.0, 1.0, 3.0, 2.0], 50)
    2.0
    >>> percentile([4.0, 1.0, 3.0, 2.0], 100)
    4.0
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile rank must be in [0, 100], got {q}")
    ordered = sorted(values)
    # Rounding before ceil keeps binary-float dust (7/100*100 =
    # 7.000000000000001) from overshooting an exact integer rank.
    rank = max(1, math.ceil(round(q / 100.0 * len(ordered), 9)))
    return ordered[rank - 1]


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length lists.

    Returns 0.0 when either list has zero variance (the convention used by
    the user-study evaluation, where a constant preference list carries no
    ranking signal).
    """
    if len(xs) != len(ys):
        raise ValueError("pearson_correlation requires equal-length inputs")
    if len(xs) < 2:
        raise ValueError("pearson_correlation requires at least two points")
    mx = mean(xs)
    my = mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    var_x = sum((x - mx) ** 2 for x in xs)
    var_y = sum((y - my) ** 2 for y in ys)
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    if denominator == 0.0:
        # Either list is constant (or its variance underflowed): no signal.
        return 0.0
    return cov / denominator
