"""Seeded randomness helpers.

Every stochastic component in the library (graph generation, negative
sampling, noise injection, simulated annotators) takes an explicit seed or
``numpy.random.Generator``.  These helpers derive independent child
generators from a parent seed and a string label, so that adding a new
random consumer never perturbs the random stream of existing ones — a
property the reproducibility of the experiment suite relies on.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def stable_hash(label: str, *, bits: int = 64) -> int:
    """A process-independent hash of ``label``.

    Python's builtin ``hash`` is salted per process for strings, which would
    make derived seeds unstable across runs; SHA-256 is not.
    """
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[: bits // 8], "big")


def derive_rng(seed: SeedLike, label: str = "") -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from ``seed`` and ``label``.

    - If ``seed`` is already a generator it is returned unchanged (the label
      is ignored; the caller owns stream separation in that case).
    - If ``seed`` is an int (or ``None``), the label is mixed in so that
      ``derive_rng(7, "edges")`` and ``derive_rng(7, "nodes")`` produce
      independent streams.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    base = 0 if seed is None else int(seed)
    mixed = (base * 0x9E3779B97F4A7C15 + stable_hash(label)) % (2**63)
    return np.random.default_rng(mixed)
