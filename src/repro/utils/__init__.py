"""Small shared utilities: heaps, clocks, RNG helpers, statistics."""

from repro.utils.heap import MaxHeap, MinHeap
from repro.utils.rng import derive_rng, stable_hash
from repro.utils.stats import geometric_mean, mean, pearson_correlation
from repro.utils.timing import BudgetClock, Clock, Stopwatch, WallClock

__all__ = [
    "MaxHeap",
    "MinHeap",
    "derive_rng",
    "stable_hash",
    "geometric_mean",
    "mean",
    "pearson_correlation",
    "BudgetClock",
    "Clock",
    "Stopwatch",
    "WallClock",
]
