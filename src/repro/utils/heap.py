"""Max/min heap wrappers over :mod:`heapq` with stable tie-breaking.

The paper's Algorithm 1 keeps two max-heaps: the priority queue ``q`` of
partial paths ordered by estimated pss, and the match set ``Mi`` ordered by
exact pss.  Python's :mod:`heapq` is a min-heap of comparable items, so
:class:`MaxHeap` negates priorities internally and adds a monotone insertion
counter.  The counter makes pop order deterministic when priorities tie,
which keeps the search (and therefore every experiment) reproducible.
"""

from __future__ import annotations

import heapq
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class MaxHeap(Generic[T]):
    """A max-heap of ``(priority, item)`` pairs.

    Ties on priority are broken by insertion order (FIFO), which keeps pop
    order deterministic across runs.

    >>> h = MaxHeap()
    >>> h.push(0.5, "a"); h.push(0.9, "b"); h.push(0.5, "c")
    >>> h.pop_max()
    (0.9, 'b')
    >>> h.pop_max()
    (0.5, 'a')
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, T]] = []
        self._counter = 0

    def push(self, priority: float, item: T) -> None:
        """Insert ``item`` with the given ``priority``."""
        heapq.heappush(self._heap, (-priority, self._counter, item))
        self._counter += 1

    def pop_max(self) -> Tuple[float, T]:
        """Remove and return the ``(priority, item)`` pair with max priority.

        Raises :class:`IndexError` on an empty heap, mirroring ``list.pop``.
        """
        neg, _count, item = heapq.heappop(self._heap)
        return -neg, item

    def peek_max(self) -> Tuple[float, T]:
        """Return the max ``(priority, item)`` pair without removing it."""
        neg, _count, item = self._heap[0]
        return -neg, item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Tuple[float, T]]:
        """Iterate over ``(priority, item)`` pairs in descending order.

        The heap itself is not consumed; iteration sorts a copy.
        """
        for neg, _count, item in sorted(self._heap):
            yield -neg, item

    def drain(self) -> List[Tuple[float, T]]:
        """Pop everything, returning pairs in descending priority order."""
        out = []
        while self._heap:
            out.append(self.pop_max())
        return out

    @property
    def max_priority(self) -> Optional[float]:
        """Priority of the top item, or ``None`` if the heap is empty."""
        if not self._heap:
            return None
        return -self._heap[0][0]


class MinHeap(Generic[T]):
    """A min-heap counterpart of :class:`MaxHeap` (used by TA bookkeeping)."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, T]] = []
        self._counter = 0

    def push(self, priority: float, item: T) -> None:
        heapq.heappush(self._heap, (priority, self._counter, item))
        self._counter += 1

    def pop_min(self) -> Tuple[float, T]:
        prio, _count, item = heapq.heappop(self._heap)
        return prio, item

    def peek_min(self) -> Tuple[float, T]:
        prio, _count, item = self._heap[0]
        return prio, item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
