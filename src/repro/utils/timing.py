"""Clock abstractions for the time-bounded query (TBQ) machinery.

Section VI of the paper terminates the A* search on an *execution time
check* against a user-specified bound ``T``.  Real wall-clock time makes
unit tests flaky, so the library separates the notion of "time" behind the
:class:`Clock` interface:

- :class:`WallClock` measures real elapsed seconds (used in benchmarks and
  by end users, matching the paper's SRT experiments), and
- :class:`BudgetClock` counts abstract *ticks* that the search advances
  explicitly (one tick per expansion step by default), giving fully
  deterministic TBQ behaviour in tests.

Both report time as float seconds so the rest of the code never branches on
the clock type.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import TimeBudgetError


class Clock:
    """Interface for time sources used by the time-bounded search."""

    def now(self) -> float:
        """Current time in (possibly simulated) seconds."""
        raise NotImplementedError

    def tick(self, amount: float = 1.0) -> None:
        """Advance simulated time.  A no-op for real clocks."""


class WallClock(Clock):
    """Real monotonic wall-clock time."""

    def now(self) -> float:
        return time.perf_counter()

    def tick(self, amount: float = 1.0) -> None:  # pragma: no cover - no-op
        pass


class BudgetClock(Clock):
    """Deterministic clock advanced explicitly by the search loop.

    ``seconds_per_tick`` converts abstract work units into "seconds" so that
    time bounds can be expressed in the same unit as :class:`WallClock`.

    >>> clock = BudgetClock(seconds_per_tick=0.001)
    >>> clock.tick(); clock.tick(3)
    >>> clock.now()
    0.004
    """

    def __init__(self, seconds_per_tick: float = 1.0, start: float = 0.0):
        if seconds_per_tick <= 0:
            raise TimeBudgetError("seconds_per_tick must be positive")
        self.seconds_per_tick = seconds_per_tick
        self._ticks = float(start)

    def now(self) -> float:
        return self._ticks * self.seconds_per_tick

    def tick(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TimeBudgetError("cannot tick a clock backwards")
        self._ticks += amount


class Stopwatch:
    """Measures elapsed time on any :class:`Clock`.

    >>> clock = BudgetClock()
    >>> watch = Stopwatch(clock)
    >>> clock.tick(5)
    >>> watch.elapsed()
    5.0
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock if clock is not None else WallClock()
        self._start = self.clock.now()

    def restart(self) -> None:
        """Reset the start point to the current clock reading."""
        self._start = self.clock.now()

    def elapsed(self) -> float:
        """Seconds since construction or the last :meth:`restart`."""
        return self.clock.now() - self._start
