"""Quickstart: the paper's running example end to end.

Builds a DBpedia-like knowledge graph, a predicate semantic space, and
runs the Q117 query "find all cars produced in Germany" — phrased with the
mismatching predicate ``product``, exactly like Fig. 2 — through the SGQ
engine.  Prints the top answers with the semantic paths that justify them.

Run:  python examples/quickstart.py
"""

from repro.core.config import SearchConfig
from repro.core.engine import SemanticGraphQueryEngine
from repro.embedding.oracle import oracle_predicate_space
from repro.kg.generator import build_dataset
from repro.kg.schema import dbpedia_like_schema
from repro.query.builder import QueryGraphBuilder
from repro.query.transform import TransformationLibrary


def main() -> None:
    # 1. The substrate: a synthetic DBpedia-like knowledge graph.
    schema = dbpedia_like_schema()
    kg = build_dataset("dbpedia", seed=1, scale=2.0)
    print(f"knowledge graph: {kg.num_entities} entities, {kg.num_edges} edges")

    # 2. The predicate semantic space (Section IV-A).  The deterministic
    #    oracle is instant; swap in repro.embedding.trainer.train_predicate_space
    #    to train a real TransE (see examples/embedding_pipeline.py).
    space = oracle_predicate_space(schema, seed=3)
    print(f"sim(product, assembly)   = {space.similarity('product', 'assembly'):.2f}")
    print(f"sim(product, designer)   = {space.similarity('product', 'designer'):.2f}")
    print(f"sim(product, language)   = {space.similarity('product', 'language'):.2f}")

    # 3. The engine: transformation library + paper-default config
    #    (τ = 0.8, n̂ = 4).
    library = TransformationLibrary.from_schema(schema)
    engine = SemanticGraphQueryEngine(kg, space, library, SearchConfig())

    # 4. Q117 as a query graph: ?car --product--> Germany.  Note the
    #    phrasing gap: the graph has no product edges near Germany; correct
    #    answers hide behind assembly / assemblyCity+country /
    #    manufacturer+location schemas.
    query = (
        QueryGraphBuilder()
        .target("v1", "Car")                     # synonym of Automobile
        .specific("v2", "GER", "Country")        # abbreviation of Germany
        .edge("e1", "v1", "product", "v2")
        .build()
    )
    result = engine.search(query, k=10)

    print(f"\ntop-10 answers in {result.elapsed_seconds * 1000:.1f} ms "
          f"({result.total_stats().expansions} A* expansions):")
    for match in result.matches:
        print("  " + match.describe(kg))


if __name__ == "__main__":
    main()
