"""Chain / star / triangle query graphs (Fig. 3) with decomposition.

Shows how a general query graph is decomposed into sub-query path graphs
around a pivot (Section III-A), how the pivot choice changes the plan, and
how the TA assembly joins per-sub-query matches into final answers.

Run:  python examples/complex_queries.py
"""

from repro.core.engine import SemanticGraphQueryEngine
from repro.embedding.oracle import oracle_predicate_space
from repro.kg.generator import build_dataset
from repro.kg.schema import dbpedia_like_schema
from repro.query.builder import QueryGraphBuilder
from repro.query.transform import TransformationLibrary


def main() -> None:
    schema = dbpedia_like_schema()
    kg = build_dataset("dbpedia", seed=1, scale=3.0)
    engine = SemanticGraphQueryEngine(
        kg,
        oracle_predicate_space(schema, seed=3),
        TransformationLibrary.from_schema(schema),
    )

    # Fig. 3(c)-style triangle: German cars and their German designers.
    triangle = (
        QueryGraphBuilder()
        .target("v1", "Automobile")
        .target("v2", "Person")
        .specific("v3", "Germany", "Country")
        .edge("e1", "v1", "assembly", "v3")
        .edge("e2", "v2", "nationality", "v3")
        .edge("e3", "v1", "designer", "v2")
        .build()
    )

    decomposition = engine.decompose(triangle)
    print("triangle query decomposition (minCost pivot):")
    print(f"  {decomposition.describe()}")

    for pivot in [n.label for n in triangle.target_nodes()]:
        forced = engine.decompose(triangle, pivot=pivot)
        print(f"  forced pivot {pivot}: {forced.describe()}")

    result = engine.search(triangle, k=5)
    print(f"\ntop-5 triangle answers ({result.elapsed_seconds * 1000:.1f} ms, "
          f"{result.ta_accesses} TA accesses):")
    for match in result.matches:
        complete = "complete" if match.is_complete else "partial"
        print(f"  [{complete}] {match.describe(kg)}")

    # Fig. 16(a)-style complex query: Korean players at English clubs.
    star = (
        QueryGraphBuilder()
        .target("v1", "Person")
        .specific("v2", "Korea", "Country")
        .target("v3", "SoccerClub")
        .specific("v4", "England", "Country")
        .edge("e1", "v1", "nationality", "v2")
        .edge("e2", "v1", "team", "v3")
        .edge("e3", "v3", "clubCountry", "v4")
        .build()
    )
    result = engine.search(star, k=5)
    print(f"\ntop-5 'Korean players at English clubs' "
          f"({result.elapsed_seconds * 1000:.1f} ms):")
    for match in result.matches:
        print("  " + match.describe(kg))


if __name__ == "__main__":
    main()
