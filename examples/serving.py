"""Serving a query workload: shared cache + batched QueryService.

Builds the DBpedia-like dataset, stands up a :class:`QueryService` over
it, and replays the benchmark workload three times — the first pass is
cold, later passes run against the warm shared semantic-graph cache.
Also shows single-query submission with a per-query deadline (TBQ).

Run:  python examples/serving.py
"""

from repro.bench.datasets import load_bundle
from repro.query.builder import QueryGraphBuilder
from repro.serve import QueryService, WorkloadItem, replay


def main() -> None:
    # 1. The substrate: dataset bundle (graph + space + workload).
    bundle = load_bundle("dbpedia", scale=2.0, seed=1)
    print(
        f"knowledge graph: {bundle.kg.num_entities} entities, "
        f"{bundle.kg.num_edges} edges; workload: {len(bundle.workload)} queries"
    )

    # 2. The serving layer: worker pool + shared weight cache.
    with QueryService.build(
        bundle.kg, bundle.space, bundle.library, max_workers=4
    ) as service:
        # 3. Replay the full workload; pass 1 is cold, 2-3 are warm.
        items = [WorkloadItem(query=q.query, k=10, qid=q.qid) for q in bundle.workload]
        for run in range(1, 4):
            service.cache.reset_stats()
            report = replay(service, items)
            label = "cold" if run == 1 else "warm"
            print(f"\n--- pass {run} ({label}) ---")
            print(report.describe())

        # 4. One-off queries ride the same cache.  A deadline switches the
        #    request to the paper's time-bounded TBQ mode.
        query = (
            QueryGraphBuilder()
            .target("v1", "Car")
            .specific("v2", "GER", "Country")
            .edge("e1", "v1", "product", "v2")
            .build()
        )
        exact = service.submit(query, k=5).result()
        bounded = service.submit(query, k=5, deadline=0.02).result()
        print(f"\nexact SGQ: {len(exact.matches)} matches "
              f"in {exact.elapsed_seconds * 1000:.1f} ms")
        print(f"TBQ (T=20ms): {len(bounded.matches)} matches "
              f"in {bounded.elapsed_seconds * 1000:.1f} ms "
              f"(approximate={bounded.approximate})")

        print(f"\nservice: {service.stats.completed} completed, "
              f"decomposition memo hit rate "
              f"{service.memo_hit_rate:.2f}")
        print(f"cache: {service.cache.stats.describe()}")


if __name__ == "__main__":
    main()
