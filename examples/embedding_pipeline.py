"""The fully paper-faithful offline pipeline: train TransE on the graph's
triples (Section IV-A), export the predicate semantic space, and compare
it against the calibrated oracle — then answer a query with each.

Run:  python examples/embedding_pipeline.py
"""

from repro.core.engine import SemanticGraphQueryEngine
from repro.embedding.oracle import oracle_predicate_space
from repro.embedding.trainer import TrainingConfig, train_predicate_space
from repro.kg.generator import build_dataset
from repro.kg.schema import dbpedia_like_schema
from repro.query.builder import QueryGraphBuilder
from repro.query.transform import TransformationLibrary


def main() -> None:
    schema = dbpedia_like_schema()
    kg = build_dataset("dbpedia", seed=1, scale=1.0)

    print("training TransE (dim=64, 30 epochs) ...")
    trained_space, report = train_predicate_space(
        kg,
        TrainingConfig(dim=64, epochs=30, batch_size=256, learning_rate=0.05, seed=0),
    )
    print(
        f"  {report.num_triples} triples, loss {report.loss_history[0]:.3f} -> "
        f"{report.final_loss:.3f}, {report.seconds:.1f}s, "
        f"{report.memory_bytes / 1e6:.1f} MB"
    )

    oracle_space = oracle_predicate_space(schema, seed=3)
    print("\npredicate similarities (trained TransE vs calibrated oracle):")
    pairs = [
        ("assembly", "assemblyCity"),
        ("language", "officialLanguage"),
        ("assembly", "language"),
        ("nationality", "citizenship"),
    ]
    for a, b in pairs:
        print(
            f"  sim({a}, {b}): TransE {trained_space.similarity(a, b):+.2f}  "
            f"oracle {oracle_space.similarity(a, b):+.2f}"
        )

    library = TransformationLibrary.from_schema(schema)
    query = (
        QueryGraphBuilder()
        .target("v1", "Automobile")
        .specific("v2", "Germany", "Country")
        .edge("e1", "v1", "assembly", "v2")
        .build()
    )
    for name, space in (("TransE", trained_space), ("oracle", oracle_space)):
        engine = SemanticGraphQueryEngine(kg, space, library)
        result = engine.search(query, k=5)
        print(f"\ntop-5 with the {name} space:")
        for match in result.matches:
            print("  " + match.describe(kg))


if __name__ == "__main__":
    main()
