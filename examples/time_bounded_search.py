"""Response-time-bounded search (TBQ, Section VI).

Runs the same multi-constraint query under a series of shrinking time
bounds and shows the accuracy/latency trade-off: tighter bounds return
earlier with approximate answers; generous bounds converge to the exact
SGQ result (Theorem 4).

Run:  python examples/time_bounded_search.py
"""

from repro.bench.metrics import jaccard
from repro.core.engine import SemanticGraphQueryEngine
from repro.embedding.oracle import oracle_predicate_space
from repro.kg.generator import build_dataset
from repro.kg.schema import dbpedia_like_schema
from repro.query.builder import QueryGraphBuilder
from repro.query.transform import TransformationLibrary


def main() -> None:
    schema = dbpedia_like_schema()
    kg = build_dataset("dbpedia", seed=1, scale=4.0)
    engine = SemanticGraphQueryEngine(
        kg,
        oracle_predicate_space(schema, seed=3),
        TransformationLibrary.from_schema(schema),
    )

    # Fig. 3(a): cars assembled in China with German engines.
    query = (
        QueryGraphBuilder()
        .target("v1", "Automobile")
        .specific("v2", "China", "Country")
        .target("v3", "Engine")
        .specific("v4", "Germany", "Country")
        .edge("e1", "v1", "assembly", "v2")
        .edge("e2", "v1", "engine", "v3")
        .edge("e3", "v3", "manufacturer", "v4")
        .build()
    )

    exact = engine.search(query, k=20)
    exact_answers = set(exact.answer_uids())
    print(
        f"SGQ (exact):  {len(exact.matches)} answers in "
        f"{exact.elapsed_seconds * 1000:.1f} ms"
    )

    print(f"\n{'bound (ms)':>10}  {'measured (ms)':>13}  {'answers':>7}  {'Jaccard vs exact':>16}")
    for fraction in (0.1, 0.25, 0.5, 1.0, 4.0):
        bound = max(exact.elapsed_seconds * fraction, 1e-4)
        result = engine.search_time_bounded(query, k=20, time_bound=bound)
        similarity = jaccard(result.answer_uids(), exact_answers)
        print(
            f"{bound * 1000:>10.2f}  {result.elapsed_seconds * 1000:>13.2f}  "
            f"{len(result.matches):>7}  {similarity:>16.2f}"
        )

    print("\nEach TBQ run returned within (a small factor of) its bound;")
    print("the generous bound reproduces the exact SGQ answer set.")


if __name__ == "__main__":
    main()
